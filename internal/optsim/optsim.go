// Package optsim models the floating point consequences of compiler
// optimization levels, fast-math flags, and non-standard hardware modes.
//
// It is the mechanical ground truth behind the paper's optimization
// quiz: a flag configuration is "non-standard" precisely when this
// simulator can exhibit an input on which the optimized evaluation of a
// program differs bit-for-bit from the strict IEEE evaluation. The
// rewrites mirror well-known compiler behaviours:
//
//   - -O0..-O2: no semantic floating point rewrites (value-safe only),
//     so -O2 is the highest level that preserves standard compliance.
//   - -O3: fused multiply-add contraction (a*b + c -> fma), mirroring
//     -ffp-contract=fast being enabled at high optimization.
//   - -ffast-math: contraction plus reassociation, reciprocal
//     approximation, algebraic simplifications that are wrong for
//     NaN/Inf/-0, and flush-to-zero/denormals-are-zero hardware modes.
package optsim

import (
	"fmt"
	"math/rand"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

// Level is a conventional compiler optimization level, -O0 through -O3.
type Level int

const (
	O0 Level = iota
	O1
	O2
	O3
)

// String renders the level as a compiler flag.
func (l Level) String() string { return fmt.Sprintf("-O%d", int(l)) }

// Config describes an optimization configuration: the set of
// floating point transformations the "compiler" may apply and the
// hardware modes it enables.
type Config struct {
	Name     string
	Level    Level
	FastMath bool

	// ContractFMA fuses a*b ± c into a single-rounding FMA
	// (-ffp-contract=fast).
	ContractFMA bool
	// Reassociate rebalances +/* chains (-fassociative-math).
	Reassociate bool
	// RecipApprox rewrites x/y into x*(1/y) (-freciprocal-math).
	RecipApprox bool
	// UnsafeAlgebra applies identities that are wrong in the presence
	// of NaN, infinity, or signed zero: x-x -> 0, x/x -> 1, x*0 -> 0,
	// x+0 -> x (-ffinite-math-only, -fno-signed-zeros).
	UnsafeAlgebra bool
	// FTZDAZ enables flush-to-zero and denormals-are-zero in the
	// floating point environment (what linking with -ffast-math does
	// via crtfastmath setting MXCSR on x86).
	FTZDAZ bool
}

// ForLevel returns the configuration for a plain -O level with no
// fast-math flags.
func ForLevel(l Level) Config {
	c := Config{Name: l.String(), Level: l}
	if l >= O3 {
		c.ContractFMA = true
	}
	return c
}

// FastMath returns the -ffast-math configuration (at -O2, as commonly
// invoked).
func FastMath() Config {
	return Config{
		Name:          "-O2 -ffast-math",
		Level:         O2,
		FastMath:      true,
		ContractFMA:   true,
		Reassociate:   true,
		RecipApprox:   true,
		UnsafeAlgebra: true,
		FTZDAZ:        true,
	}
}

// Strict returns the baseline, fully standard-compliant configuration.
func Strict() Config { return Config{Name: "strict"} }

// AllConfigs returns the standard sweep: -O0..-O3 and fast-math.
func AllConfigs() []Config {
	return []Config{
		ForLevel(O0), ForLevel(O1), ForLevel(O2), ForLevel(O3), FastMath(),
	}
}

// Optimize applies the configuration's rewrites to an expression and
// returns the transformed tree along with the names of passes that made
// a change.
func (c Config) Optimize(n expr.Node) (expr.Node, []string) {
	var applied []string
	if c.UnsafeAlgebra {
		var changed bool
		n, changed = rewrite(n, unsafeAlgebra)
		if changed {
			applied = append(applied, "unsafe-algebra")
		}
	}
	if c.Reassociate {
		var changed bool
		n, changed = rewriteFixpoint(n, reassociate)
		if changed {
			applied = append(applied, "reassociate")
		}
	}
	if c.RecipApprox {
		var changed bool
		n, changed = rewrite(n, recipApprox)
		if changed {
			applied = append(applied, "reciprocal-math")
		}
	}
	if c.ContractFMA {
		var changed bool
		n, changed = rewrite(n, contractFMA)
		if changed {
			applied = append(applied, "fma-contraction")
		}
	}
	return n, applied
}

// EnvFor returns a fresh floating point environment with the
// configuration's hardware modes applied.
func (c Config) EnvFor() *ieee754.Env {
	return &ieee754.Env{FTZ: c.FTZDAZ, DAZ: c.FTZDAZ}
}

// rewriter transforms one node, reporting whether it changed. Children
// are already rewritten when it runs.
type rewriter func(expr.Node) (expr.Node, bool)

// rewrite applies r bottom-up over the tree once.
func rewrite(n expr.Node, r rewriter) (expr.Node, bool) {
	changed := false
	var walk func(expr.Node) expr.Node
	walk = func(m expr.Node) expr.Node {
		switch t := m.(type) {
		case expr.Unary:
			t.X = walk(t.X)
			m = t
		case expr.Binary:
			t.X = walk(t.X)
			t.Y = walk(t.Y)
			m = t
		case expr.FMA:
			t.X = walk(t.X)
			t.Y = walk(t.Y)
			t.Z = walk(t.Z)
			m = t
		}
		out, ch := r(m)
		if ch {
			changed = true
		}
		return out
	}
	return walk(n), changed
}

// rewriteFixpoint applies rewrite until no change (bounded).
func rewriteFixpoint(n expr.Node, r rewriter) (expr.Node, bool) {
	any := false
	for i := 0; i < 64; i++ {
		out, ch := rewrite(n, r)
		n = out
		if !ch {
			break
		}
		any = true
	}
	return n, any
}

// contractFMA fuses multiply-add shapes into FMA nodes.
func contractFMA(n expr.Node) (expr.Node, bool) {
	b, ok := n.(expr.Binary)
	if !ok {
		return n, false
	}
	switch b.Op {
	case expr.OpAdd:
		if m, ok := b.X.(expr.Binary); ok && m.Op == expr.OpMul {
			return expr.FMA{X: m.X, Y: m.Y, Z: b.Y}, true
		}
		if m, ok := b.Y.(expr.Binary); ok && m.Op == expr.OpMul {
			return expr.FMA{X: m.X, Y: m.Y, Z: b.X}, true
		}
	case expr.OpSub:
		if m, ok := b.X.(expr.Binary); ok && m.Op == expr.OpMul {
			// a*b - c = fma(a, b, -c)
			return expr.FMA{X: m.X, Y: m.Y, Z: expr.Unary{Op: expr.OpNeg, X: b.Y}}, true
		}
		if m, ok := b.Y.(expr.Binary); ok && m.Op == expr.OpMul {
			// c - a*b = fma(-a, b, c)
			return expr.FMA{X: expr.Unary{Op: expr.OpNeg, X: m.X}, Y: m.Y, Z: b.X}, true
		}
	}
	return n, false
}

// reassociate rotates left-leaning +/* chains rightward, modeling the
// reordering freedom -fassociative-math grants (vectorizers split sums
// into partial sums; any reorder suffices to exhibit non-compliance).
func reassociate(n expr.Node) (expr.Node, bool) {
	b, ok := n.(expr.Binary)
	if !ok || (b.Op != expr.OpAdd && b.Op != expr.OpMul) {
		return n, false
	}
	l, ok := b.X.(expr.Binary)
	if !ok || l.Op != b.Op {
		return n, false
	}
	// (x op y) op z  ->  x op (y op z)
	return expr.Binary{Op: b.Op, X: l.X, Y: expr.Binary{Op: b.Op, X: l.Y, Y: b.Y}}, true
}

// recipApprox rewrites division into multiplication by the reciprocal.
func recipApprox(n expr.Node) (expr.Node, bool) {
	b, ok := n.(expr.Binary)
	if !ok || b.Op != expr.OpDiv {
		return n, false
	}
	if l, ok := b.X.(expr.Lit); ok && l.V == 1 {
		return n, false // already a reciprocal
	}
	return expr.Binary{
		Op: expr.OpMul,
		X:  b.X,
		Y:  expr.Binary{Op: expr.OpDiv, X: expr.Lit{V: 1}, Y: b.Y},
	}, true
}

// unsafeAlgebra applies real-number identities that floating point does
// not honor for NaN, infinities, or signed zeros.
func unsafeAlgebra(n expr.Node) (expr.Node, bool) {
	b, ok := n.(expr.Binary)
	if !ok {
		return n, false
	}
	switch b.Op {
	case expr.OpSub:
		if expr.Equal(b.X, b.Y) {
			return expr.Lit{V: 0}, true // x - x -> 0 (wrong for NaN, Inf)
		}
	case expr.OpDiv:
		if expr.Equal(b.X, b.Y) {
			return expr.Lit{V: 1}, true // x / x -> 1 (wrong for NaN, 0, Inf)
		}
	case expr.OpAdd:
		if isLitZero(b.Y) {
			return b.X, true // x + 0 -> x (wrong for -0: (-0)+0 is +0)
		}
		if isLitZero(b.X) {
			return b.Y, true
		}
	case expr.OpMul:
		if isLitZero(b.Y) {
			return expr.Lit{V: 0}, true // x * 0 -> 0 (wrong for NaN, Inf, -x)
		}
		if isLitZero(b.X) {
			return expr.Lit{V: 0}, true
		}
	}
	return n, false
}

func isLitZero(n expr.Node) bool {
	l, ok := n.(expr.Lit)
	return ok && l.V == 0
}

// Witness records one input assignment on which strict and optimized
// evaluation disagree.
type Witness struct {
	Inputs    expr.Env
	Strict    uint64
	Optimized uint64
}

// Verdict is the result of a compliance check of a configuration
// against an expression.
type Verdict struct {
	// Compliant is true when no checked input produced a different
	// result.
	Compliant bool
	// PassesApplied names the rewrites that changed the expression.
	PassesApplied []string
	// Witness is a concrete diverging input when non-compliant.
	Witness *Witness
	// Checked is the number of input assignments evaluated.
	Checked int
	// Transformed is the optimized expression.
	Transformed expr.Node
}

// Check evaluates n over the corpus under the strict IEEE environment
// and under cfg (rewrites plus hardware modes) and reports whether any
// input diverges. NaN results compare equal regardless of payload.
func Check(f ieee754.Format, n expr.Node, cfg Config, corpus []expr.Env) Verdict {
	opt, applied := cfg.Optimize(n)
	v := Verdict{Compliant: true, PassesApplied: applied, Transformed: opt}
	for _, inputs := range corpus {
		strictEnv := &ieee754.Env{}
		optEnv := cfg.EnvFor()
		s := expr.Eval(f, strictEnv, n, inputs)
		o := expr.Eval(f, optEnv, opt, inputs)
		v.Checked++
		if f.IsNaN(s) && f.IsNaN(o) {
			continue
		}
		if s != o {
			v.Compliant = false
			v.Witness = &Witness{Inputs: inputs, Strict: s, Optimized: o}
			return v
		}
	}
	return v
}

// GenCorpus builds a deterministic input corpus for the variables of n:
// a grid over special values plus random values across magnitude
// regimes, the mixture that exposes reassociation, contraction, and
// FTZ/DAZ differences.
func GenCorpus(f ieee754.Format, n expr.Node, size int, seed int64) []expr.Env {
	vars := expr.Vars(n)
	rng := rand.New(rand.NewSource(seed))
	var scratch ieee754.Env
	specials := []uint64{
		f.Zero(false), f.Zero(true), f.One(false), f.One(true),
		f.Inf(false), f.Inf(true), f.QNaN(),
		f.MaxFinite(false), f.MinNormal(), f.MinSubnormal(),
		f.FromFloat64(&scratch, 3), f.FromFloat64(&scratch, 0.1),
		f.FromFloat64(&scratch, 1e8), f.FromFloat64(&scratch, 1e-8),
	}
	randVal := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return specials[rng.Intn(len(specials))]
		case 1: // small integers
			return f.FromFloat64(&scratch, float64(rng.Intn(200)-100))
		case 2: // wide magnitude spread
			m := rng.Float64()*2 - 1
			exp := rng.Intn(40) - 20
			v := m
			for i := 0; i < exp; i++ {
				v *= 2
			}
			for i := 0; i > exp; i-- {
				v /= 2
			}
			return f.FromFloat64(&scratch, v)
		default: // subnormal-range
			bits := rng.Uint64() & (f.MinNormal() - 1)
			return bits
		}
	}
	corpus := make([]expr.Env, 0, size)
	for i := 0; i < size; i++ {
		env := expr.Env{}
		for _, name := range vars {
			env[name] = randVal()
		}
		corpus = append(corpus, env)
	}
	return corpus
}

// HighestCompliantLevel sweeps -O0..-O3 over a set of programs and
// returns the highest level that remained compliant on every program —
// the executable answer to the paper's "Standard-compliant Level" quiz
// question.
func HighestCompliantLevel(f ieee754.Format, programs []expr.Node, corpusSize int, seed int64) Level {
	best := O0
	for l := O0; l <= O3; l++ {
		ok := true
		for _, p := range programs {
			if !Check(f, p, ForLevel(l), GenCorpus(f, p, corpusSize, seed)).Compliant {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		best = l
	}
	return best
}

// WitnessPrograms returns the standard set of small programs used to
// probe configurations: shapes that compilers demonstrably transform.
func WitnessPrograms() []expr.Node {
	return []expr.Node{
		expr.MustParse("a*b + c"),           // FMA contraction
		expr.MustParse("(a + b) + c"),       // reassociation
		expr.MustParse("((a + b) + c) + d"), // deeper reassociation
		expr.MustParse("a/b"),               // reciprocal math
		expr.MustParse("a - a"),             // finite-math x-x
		expr.MustParse("a/a"),               // finite-math x/x
		expr.MustParse("a + 0"),             // signed zero
		expr.MustParse("a*0"),               // NaN/Inf * 0
		expr.MustParse("a*b - c"),           // FMA with subtract
		expr.MustParse("(a*b + c*d) + e"),   // dot-product shape
		expr.MustParse("a*1e-300*1e-10*b"),  // FTZ/DAZ territory
		expr.MustParse("sqrt(a*a + b*b)"),   // hypot shape
	}
}
