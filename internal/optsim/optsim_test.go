package optsim

import (
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

var f64 = ieee754.Binary64

func TestO0ThroughO2AreCompliant(t *testing.T) {
	for _, p := range WitnessPrograms() {
		for l := O0; l <= O2; l++ {
			v := Check(f64, p, ForLevel(l), GenCorpus(f64, p, 500, 1))
			if !v.Compliant {
				t.Errorf("%v non-compliant on %q: strict=%x opt=%x inputs=%v",
					l, p.String(), v.Witness.Strict, v.Witness.Optimized, v.Witness.Inputs)
			}
			if len(v.PassesApplied) != 0 {
				t.Errorf("%v applied passes %v on %q", l, v.PassesApplied, p.String())
			}
		}
	}
}

func TestO3ContractsFMAAndDiverges(t *testing.T) {
	p := expr.MustParse("a*b + c")
	v := Check(f64, p, ForLevel(O3), GenCorpus(f64, p, 2000, 2))
	if v.Compliant {
		t.Fatal("-O3 FMA contraction should diverge from strict on some input")
	}
	if len(v.PassesApplied) != 1 || v.PassesApplied[0] != "fma-contraction" {
		t.Fatalf("passes: %v", v.PassesApplied)
	}
	if _, ok := v.Transformed.(expr.FMA); !ok {
		t.Fatalf("transformed: %v", v.Transformed)
	}
}

func TestFastMathDiverges(t *testing.T) {
	progs := []string{
		"(a + b) + c",      // reassociation
		"a/b",              // reciprocal
		"a - a",            // x-x with NaN/Inf inputs
		"a/a",              // x/x with zero/NaN/Inf inputs
		"a*0",              // x*0 with NaN/Inf inputs
		"a*1e-300*1e-10*b", // FTZ/DAZ
	}
	for _, src := range progs {
		p := expr.MustParse(src)
		v := Check(f64, p, FastMath(), GenCorpus(f64, p, 3000, 3))
		if v.Compliant {
			t.Errorf("fast-math stayed compliant on %q (passes %v)", src, v.PassesApplied)
		}
	}
}

func TestHighestCompliantLevelIsO2(t *testing.T) {
	got := HighestCompliantLevel(f64, WitnessPrograms(), 1000, 42)
	if got != O2 {
		t.Fatalf("highest compliant level = %v, want -O2", got)
	}
}

func TestReassociateRotation(t *testing.T) {
	n := expr.MustParse("(a + b) + c")
	out, changed := rewriteFixpoint(n, reassociate)
	if !changed {
		t.Fatal("no rotation")
	}
	want := expr.MustParse("a + (b + c)")
	if !expr.Equal(out, want) {
		t.Fatalf("got %q want %q", out.String(), want.String())
	}
	// Deep chains fully rotate.
	n = expr.MustParse("((a + b) + c) + d")
	out, _ = rewriteFixpoint(n, reassociate)
	want = expr.MustParse("a + (b + (c + d))")
	if !expr.Equal(out, want) {
		t.Fatalf("deep: got %q want %q", out.String(), want.String())
	}
}

func TestContractVariants(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a*b + c", "fma(a, b, c)"},
		{"c + a*b", "fma(a, b, c)"},
		{"a*b - c", "fma(a, b, -c)"},
		{"c - a*b", "fma(-a, b, c)"},
	}
	for _, c := range cases {
		out, changed := rewrite(expr.MustParse(c.src), contractFMA)
		if !changed {
			t.Errorf("%q: no contraction", c.src)
			continue
		}
		if !expr.Equal(out, expr.MustParse(c.want)) {
			t.Errorf("%q -> %q, want %q", c.src, out.String(), c.want)
		}
	}
}

func TestRecipApprox(t *testing.T) {
	out, changed := rewrite(expr.MustParse("a/b"), recipApprox)
	if !changed || !expr.Equal(out, expr.MustParse("a*(1/b)")) {
		t.Fatalf("got %q", out.String())
	}
	// 1/b is left alone (it is already a reciprocal).
	_, changed = rewrite(expr.MustParse("1/b"), recipApprox)
	if changed {
		t.Fatal("1/b should not be rewritten")
	}
}

func TestUnsafeAlgebraWitnesses(t *testing.T) {
	// x - x -> 0 is wrong when x is Inf or NaN.
	var scratch ieee754.Env
	inf := f64.Inf(false)
	p := expr.MustParse("a - a")
	opt, _ := FastMath().Optimize(p)
	strictEnv := &ieee754.Env{}
	in := expr.Env{"a": inf}
	s := expr.Eval(f64, strictEnv, p, in)
	o := expr.Eval(f64, &scratch, opt, in)
	if !f64.IsNaN(s) {
		t.Fatalf("strict inf-inf = %x, want NaN", s)
	}
	if f64.IsNaN(o) {
		t.Fatal("optimized inf-inf still NaN; x-x not folded")
	}
	// x + 0 -> x is wrong for x = -0 (result should be +0).
	p = expr.MustParse("a + 0")
	opt, _ = FastMath().Optimize(p)
	in = expr.Env{"a": f64.Zero(true)}
	s = expr.Eval(f64, strictEnv, p, in)
	o = expr.Eval(f64, &scratch, opt, in)
	if f64.SignBit(s) {
		t.Fatal("strict (-0)+0 should be +0")
	}
	if !f64.SignBit(o) {
		t.Fatal("optimized (-0)+0 should remain -0 (witnessing the change)")
	}
}

func TestFTZDAZEnvDiverges(t *testing.T) {
	// Even with no rewrites possible, fast-math's FTZ/DAZ hardware mode
	// changes results of subnormal-producing programs.
	p := expr.MustParse("a*b")
	cfg := Config{Name: "ftz-only", FTZDAZ: true}
	var scratch ieee754.Env
	in := expr.Env{
		"a": f64.FromFloat64(&scratch, 1e-310), // subnormal
		"b": f64.FromFloat64(&scratch, 1e10),
	}
	v := Check(f64, p, cfg, []expr.Env{in})
	if v.Compliant {
		t.Fatal("FTZ/DAZ should diverge on subnormal input")
	}
	if len(v.PassesApplied) != 0 {
		t.Fatalf("unexpected rewrites: %v", v.PassesApplied)
	}
}

func TestStrictConfigIdentity(t *testing.T) {
	for _, p := range WitnessPrograms() {
		opt, applied := Strict().Optimize(p)
		if !expr.Equal(opt, p) || len(applied) != 0 {
			t.Errorf("strict config rewrote %q", p.String())
		}
		v := Check(f64, p, Strict(), GenCorpus(f64, p, 300, 7))
		if !v.Compliant {
			t.Errorf("strict config non-compliant on %q", p.String())
		}
	}
}

func TestConfigNamesAndSweep(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("AllConfigs: %d", len(cfgs))
	}
	wantNames := []string{"-O0", "-O1", "-O2", "-O3", "-O2 -ffast-math"}
	for i, c := range cfgs {
		if c.Name != wantNames[i] {
			t.Errorf("config %d name %q want %q", i, c.Name, wantNames[i])
		}
	}
	if O3.String() != "-O3" {
		t.Fatal("level string")
	}
}

func TestGenCorpusDeterministic(t *testing.T) {
	p := expr.MustParse("a + b")
	c1 := GenCorpus(f64, p, 50, 9)
	c2 := GenCorpus(f64, p, 50, 9)
	if len(c1) != 50 || len(c2) != 50 {
		t.Fatal("corpus size")
	}
	for i := range c1 {
		for k, v := range c1[i] {
			if c2[i][k] != v {
				t.Fatal("corpus not deterministic")
			}
		}
	}
}

func TestVerdictCountsChecked(t *testing.T) {
	p := expr.MustParse("a + b")
	v := Check(f64, p, ForLevel(O2), GenCorpus(f64, p, 123, 5))
	if v.Checked != 123 {
		t.Fatalf("checked %d", v.Checked)
	}
}
