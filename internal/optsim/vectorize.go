package optsim

import (
	"fmt"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/report"
)

// VectorizeSum models what -ffast-math actually buys compilers on
// reduction loops: a long sequential sum chain t0 + t1 + ... + tn is
// split into `lanes` partial accumulators that are combined at the end
// (the SIMD schedule). This is only legal under reassociation, and it
// changes results. VectorizeSum rewrites a left-leaning + chain into
// the lane-partitioned shape; expressions that are not sum chains are
// returned unchanged.
func VectorizeSum(n expr.Node, lanes int) (expr.Node, bool) {
	terms := flattenSum(n)
	if len(terms) < lanes*2 || lanes < 2 {
		return n, false
	}
	partials := make([]expr.Node, lanes)
	for i, t := range terms {
		lane := i % lanes
		if partials[lane] == nil {
			partials[lane] = t
		} else {
			partials[lane] = expr.Add(partials[lane], t)
		}
	}
	out := partials[0]
	for _, p := range partials[1:] {
		out = expr.Add(out, p)
	}
	return out, true
}

// flattenSum collects the terms of a left-leaning + chain; returns nil
// if the expression is not purely additions.
func flattenSum(n expr.Node) []expr.Node {
	b, ok := n.(expr.Binary)
	if !ok || b.Op != expr.OpAdd {
		return []expr.Node{n}
	}
	left := flattenSum(b.X)
	return append(left, b.Y)
}

// SumChainDivergence builds an n-term sum of the named variables,
// evaluates it sequentially and lane-partitioned over a corpus, and
// returns the fraction of inputs on which the results differ — a
// quantitative answer to "does vectorization change my results?".
func SumChainDivergence(f ieee754.Format, nTerms, lanes, corpusSize int, seed int64) (divergent float64, example *Witness) {
	names := make([]string, nTerms)
	terms := make([]expr.Node, nTerms)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
		terms[i] = expr.V(names[i])
	}
	seq := expr.SumChain(terms...)
	vec, _ := VectorizeSum(seq, lanes)
	corpus := GenCorpus(f, seq, corpusSize, seed)
	diff := 0
	for _, in := range corpus {
		var e1, e2 ieee754.Env
		a := expr.Eval(f, &e1, seq, in)
		b := expr.Eval(f, &e2, vec, in)
		if f.IsNaN(a) && f.IsNaN(b) {
			continue
		}
		if a != b {
			diff++
			if example == nil {
				example = &Witness{Inputs: in, Strict: a, Optimized: b}
			}
		}
	}
	return float64(diff) / float64(len(corpus)), example
}

// ComplianceMatrix sweeps all standard configurations over a set of
// programs and renders the verdict grid as a table — the flag-sweep
// figure behind the optimization quiz.
func ComplianceMatrix(f ieee754.Format, programs []expr.Node, corpusSize int, seed int64) report.Table {
	cfgs := AllConfigs()
	t := report.Table{
		Title:  "Compliance matrix: configuration vs program (DIVERGES = non-IEEE result exhibited)",
		Header: append([]string{"program"}, configNames(cfgs)...),
	}
	for _, p := range programs {
		row := []string{p.String()}
		for _, cfg := range cfgs {
			v := Check(f, p, cfg, GenCorpus(f, p, corpusSize, seed))
			if v.Compliant {
				row = append(row, "compliant")
			} else {
				row = append(row, "DIVERGES")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("checked %d inputs per cell; highest fully compliant level: %s",
			corpusSize, HighestCompliantLevel(f, programs, corpusSize, seed)))
	return t
}

func configNames(cfgs []Config) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}
