package fpvm

// Library of sample programs: the monitored-workload story of the
// paper, but as "binaries" the VM runs unmodified.

// HarmonicSum sums 1/k for k = 1..n (expects variable n).
var HarmonicSum = MustAssemble("harmonic-sum", `
	loadc 0
	store sum
	loadc 1
	store k
label loop
	loadc 1
	load  k
	div
	load  sum
	add
	store sum
	load  k
	loadc 1
	add
	store k
	load  k
	load  n
	jle   loop
	load  sum
	ret
`)

// NewtonSqrt computes sqrt(x) by Newton iteration until the estimate
// stops changing (expects variable x; demonstrates an equality-based
// convergence loop, which the step limit protects).
var NewtonSqrt = MustAssemble("newton-sqrt", `
	load  x
	store g           ; initial guess g = x
label iter
	load  x
	load  g
	div               ; x/g
	load  g
	add
	loadc 0.5
	mul               ; g' = (g + x/g)/2
	store gnew
	load  gnew
	load  g
	jeq   done        ; converged when g' == g
	load  gnew
	store g
	jmp   iter
label done
	load  g
	ret
`)

// QuadraticRoot computes the smaller-magnitude root of x^2 + bx + c via
// the naive formula (-b + sqrt(b^2 - 4c)) / 2 — cancellation-prone for
// large b (expects variables b and c).
var QuadraticRoot = MustAssemble("quadratic-root", `
	load  b
	load  b
	mul               ; b^2
	loadc 4
	load  c
	mul
	sub               ; b^2 - 4c
	sqrt
	load  b
	neg
	add               ; -b + sqrt(...)
	loadc 2
	div
	ret
`)

// GeometricDecay halves x until it reaches zero, walking through the
// entire subnormal range (expects variable x).
var GeometricDecay = MustAssemble("geometric-decay", `
label loop
	load  x
	loadc 0.5
	mul
	store x
	load  x
	loadc 0
	jne   loop
	load  x
	ret
`)

// SamplePrograms lists the library for tools that sweep it.
func SamplePrograms() []*Program {
	return []*Program{HarmonicSum, NewtonSqrt, QuadraticRoot, GeometricDecay}
}
