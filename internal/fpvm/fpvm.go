// Package fpvm implements a small stack-based virtual machine for
// floating point programs, executing on the ieee754 softfloat. It gives
// the exception monitor a real "unmodified program" to spy on — the
// paper's conclusions describe exactly such a runtime tool — and gives
// the precision tuner a representation with loops and mutable state,
// which pure expression trees lack.
//
// Programs are written in a tiny assembly:
//
//	; harmonic sum of n terms
//	loadc 0        ; sum
//	store sum
//	loadc 1        ; k
//	store k
//	label loop
//	loadc 1
//	load  k
//	div            ; 1/k
//	load  sum
//	add
//	store sum
//	load  k
//	loadc 1
//	add
//	store k
//	load  k
//	load  n
//	jle   loop     ; while k <= n
//	load  sum
//	ret
//
// Values on the stack and in variables are encodings of the VM's
// format. Comparisons follow IEEE semantics (NaN unordered: all
// conditional jumps fall through on unordered, except jne).
package fpvm

import (
	"fmt"
	"strconv"
	"strings"

	"fpstudy/internal/ieee754"
)

// Op is a VM opcode.
type Op uint8

const (
	OpNop Op = iota
	OpLoadConst
	OpLoad
	OpStore
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpSqrt
	OpFMA
	OpNeg
	OpAbs
	OpDup
	OpSwap
	OpPop
	OpJmp
	OpJlt // jump if a < b   (pops b, then a)
	OpJle
	OpJgt
	OpJge
	OpJeq
	OpJne
	OpRet
)

var opNames = map[Op]string{
	OpNop: "nop", OpLoadConst: "loadc", OpLoad: "load", OpStore: "store",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpSqrt: "sqrt",
	OpFMA: "fma", OpNeg: "neg", OpAbs: "abs", OpDup: "dup", OpSwap: "swap",
	OpPop: "pop", OpJmp: "jmp", OpJlt: "jlt", OpJle: "jle", OpJgt: "jgt",
	OpJge: "jge", OpJeq: "jeq", OpJne: "jne", OpRet: "ret",
}

// Instr is one instruction. Operand use depends on the opcode:
// loadc uses Const (a float64 materialized in the VM's format at run
// time); load/store use Name; jumps use Target (an instruction index
// resolved by the assembler).
type Instr struct {
	Op     Op
	Const  float64
	Name   string
	Target int
}

// Program is an executable instruction sequence.
type Program struct {
	Name   string
	Code   []Instr
	labels map[string]int
}

// ErrLimit is returned when execution exceeds the step budget.
var ErrLimit = fmt.Errorf("fpvm: step limit exceeded")

// Assemble parses the textual assembly into a Program. Comments start
// with ';'. Labels are declared as "label name" and referenced by jump
// instructions.
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name, labels: map[string]int{}}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		mnemonic := strings.ToLower(fields[0])
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("fpvm: line %d: too many operands", ln+1)
		}
		if mnemonic == "label" {
			if arg == "" {
				return nil, fmt.Errorf("fpvm: line %d: label needs a name", ln+1)
			}
			if _, dup := p.labels[arg]; dup {
				return nil, fmt.Errorf("fpvm: line %d: duplicate label %q", ln+1, arg)
			}
			p.labels[arg] = len(p.Code)
			continue
		}
		var op Op
		found := false
		for o, n := range opNames {
			if n == mnemonic {
				op, found = o, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fpvm: line %d: unknown mnemonic %q", ln+1, mnemonic)
		}
		in := Instr{Op: op}
		switch op {
		case OpLoadConst:
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("fpvm: line %d: bad constant %q", ln+1, arg)
			}
			in.Const = v
		case OpLoad, OpStore:
			if arg == "" {
				return nil, fmt.Errorf("fpvm: line %d: %s needs a variable name", ln+1, mnemonic)
			}
			in.Name = arg
		case OpJmp, OpJlt, OpJle, OpJgt, OpJge, OpJeq, OpJne:
			if arg == "" {
				return nil, fmt.Errorf("fpvm: line %d: jump needs a label", ln+1)
			}
			fixups = append(fixups, fixup{len(p.Code), arg, ln + 1})
		default:
			if arg != "" {
				return nil, fmt.Errorf("fpvm: line %d: %s takes no operand", ln+1, mnemonic)
			}
		}
		p.Code = append(p.Code, in)
	}
	for _, f := range fixups {
		t, ok := p.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("fpvm: line %d: undefined label %q", f.line, f.label)
		}
		p.Code[f.instr].Target = t
	}
	return p, nil
}

// MustAssemble panics on assembly errors; for static programs.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program back to assembly (labels
// synthesized as L<index>).
func (p *Program) Disassemble() string {
	targets := map[int]bool{}
	for _, in := range p.Code {
		switch in.Op {
		case OpJmp, OpJlt, OpJle, OpJgt, OpJge, OpJeq, OpJne:
			targets[in.Target] = true
		}
	}
	var b strings.Builder
	for i, in := range p.Code {
		if targets[i] {
			fmt.Fprintf(&b, "label L%d\n", i)
		}
		switch in.Op {
		case OpLoadConst:
			fmt.Fprintf(&b, "  loadc %g\n", in.Const)
		case OpLoad, OpStore:
			fmt.Fprintf(&b, "  %s %s\n", opNames[in.Op], in.Name)
		case OpJmp, OpJlt, OpJle, OpJgt, OpJge, OpJeq, OpJne:
			fmt.Fprintf(&b, "  %s L%d\n", opNames[in.Op], in.Target)
		default:
			fmt.Fprintf(&b, "  %s\n", opNames[in.Op])
		}
	}
	return b.String()
}

// VM executes programs in a fixed format under an environment.
type VM struct {
	F ieee754.Format
	E *ieee754.Env
	// StepLimit bounds execution (default 10 million).
	StepLimit int
}

// New creates a VM over format f with a fresh default environment.
func New(f ieee754.Format) *VM {
	return &VM{F: f, E: &ieee754.Env{}, StepLimit: 10_000_000}
}

// Run executes the program with the given variable bindings (encodings
// in the VM's format) and returns the value returned by ret (or the top
// of stack at program end; 0 if empty).
func (vm *VM) Run(p *Program, vars map[string]uint64) (uint64, error) {
	f, e := vm.F, vm.E
	limit := vm.StepLimit
	if limit <= 0 {
		limit = 10_000_000
	}
	locals := map[string]uint64{}
	for k, v := range vars {
		locals[k] = v
	}
	var stack []uint64
	push := func(v uint64) { stack = append(stack, v) }
	pop := func() (uint64, error) {
		if len(stack) == 0 {
			return 0, fmt.Errorf("fpvm: stack underflow")
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	pop2 := func() (a, b uint64, err error) {
		b, err = pop()
		if err != nil {
			return
		}
		a, err = pop()
		return
	}

	pc := 0
	steps := 0
	var scratch ieee754.Env
	for pc < len(p.Code) {
		steps++
		if steps > limit {
			return 0, ErrLimit
		}
		in := p.Code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpLoadConst:
			scratch.Rounding = e.Rounding
			push(f.FromFloat64(&scratch, in.Const))
		case OpLoad:
			v, ok := locals[in.Name]
			if !ok {
				v = f.QNaN()
			}
			push(v)
		case OpStore:
			v, err := pop()
			if err != nil {
				return 0, err
			}
			locals[in.Name] = v
		case OpAdd, OpSub, OpMul, OpDiv:
			a, b, err := pop2()
			if err != nil {
				return 0, err
			}
			switch in.Op {
			case OpAdd:
				push(f.Add(e, a, b))
			case OpSub:
				push(f.Sub(e, a, b))
			case OpMul:
				push(f.Mul(e, a, b))
			case OpDiv:
				push(f.Div(e, a, b))
			}
		case OpSqrt:
			a, err := pop()
			if err != nil {
				return 0, err
			}
			push(f.Sqrt(e, a))
		case OpFMA:
			c, err := pop()
			if err != nil {
				return 0, err
			}
			a, b, err := pop2()
			if err != nil {
				return 0, err
			}
			push(f.FMA(e, a, b, c))
		case OpNeg:
			a, err := pop()
			if err != nil {
				return 0, err
			}
			push(f.Neg(a))
		case OpAbs:
			a, err := pop()
			if err != nil {
				return 0, err
			}
			push(f.Abs(a))
		case OpDup:
			a, err := pop()
			if err != nil {
				return 0, err
			}
			push(a)
			push(a)
		case OpSwap:
			a, b, err := pop2()
			if err != nil {
				return 0, err
			}
			push(b)
			push(a)
		case OpPop:
			if _, err := pop(); err != nil {
				return 0, err
			}
		case OpJmp:
			pc = in.Target
		case OpJlt, OpJle, OpJgt, OpJge, OpJeq, OpJne:
			a, b, err := pop2()
			if err != nil {
				return 0, err
			}
			o := f.CompareQuiet(e, a, b)
			take := false
			switch in.Op {
			case OpJlt:
				take = o == ieee754.Less
			case OpJle:
				take = o == ieee754.Less || o == ieee754.Equal
			case OpJgt:
				take = o == ieee754.Greater
			case OpJge:
				take = o == ieee754.Greater || o == ieee754.Equal
			case OpJeq:
				take = o == ieee754.Equal
			case OpJne:
				take = o != ieee754.Equal // includes unordered, like C's !=
			}
			if take {
				pc = in.Target
			}
		case OpRet:
			v, err := pop()
			if err != nil {
				return 0, err
			}
			return v, nil
		}
	}
	if len(stack) > 0 {
		return stack[len(stack)-1], nil
	}
	return f.Zero(false), nil
}
