package fpvm

import (
	"math"
	"testing"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
	"fpstudy/internal/monitor"
)

var f64 = ieee754.Binary64

func bindings(vm *VM, vars map[string]float64) map[string]uint64 {
	out := map[string]uint64{}
	var e ieee754.Env
	for k, v := range vars {
		out[k] = vm.F.FromFloat64(&e, v)
	}
	return out
}

func TestHarmonicSum(t *testing.T) {
	vm := New(f64)
	res, err := vm.Run(HarmonicSum, bindings(vm, map[string]float64{"n": 100}))
	if err != nil {
		t.Fatal(err)
	}
	got := f64.ToFloat64(res)
	if math.Abs(got-5.187377517639621) > 1e-12 {
		t.Fatalf("H_100 = %v", got)
	}
}

func TestNewtonSqrt(t *testing.T) {
	vm := New(f64)
	for _, x := range []float64{2, 9, 1e6, 0.25} {
		res, err := vm.Run(NewtonSqrt, bindings(vm, map[string]float64{"x": x}))
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		got := f64.ToFloat64(res)
		if math.Abs(got-math.Sqrt(x)) > math.Sqrt(x)*1e-14 {
			t.Fatalf("newton sqrt(%v) = %v", x, got)
		}
	}
}

func TestQuadraticRootCancellation(t *testing.T) {
	vm := New(f64)
	// Roots of x^2 + 1e8 x + 1: the small root is ~-1e-8; the naive
	// formula cancels badly. Compare against the stable formula.
	res, err := vm.Run(QuadraticRoot, bindings(vm, map[string]float64{"b": 1e8, "c": 1}))
	if err != nil {
		t.Fatal(err)
	}
	got := f64.ToFloat64(res)
	exact := -1e-8 // to first order
	rel := math.Abs(got-exact) / 1e-8
	// With b = 1e8 the subtraction -b + sqrt(b^2-4c) cancels all but a
	// couple of bits: the naive formula is catastrophically wrong
	// (tens of percent off), while remaining the right order of
	// magnitude. Both facts are the point of the program.
	if rel < 1e-3 {
		t.Fatalf("naive formula unexpectedly accurate (rel %g) — cancellation missing", rel)
	}
	if got >= 0 || got < -1e-7 {
		t.Fatalf("naive root %v lost even the magnitude", got)
	}
}

func TestGeometricDecayWalksSubnormals(t *testing.T) {
	m := monitor.New()
	vm := &VM{F: f64, E: m.Env(), StepLimit: 100000}
	res, err := vm.Run(GeometricDecay, bindings(vm, map[string]float64{"x": 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !f64.IsZero(res) {
		t.Fatalf("decay result %v", f64.ToFloat64(res))
	}
	rep := m.Report()
	occurred := map[monitor.Condition]bool{}
	for _, c := range rep.Occurred() {
		occurred[c] = true
	}
	if !occurred[monitor.Underflow] || !occurred[monitor.Denorm] {
		t.Fatalf("decay should raise underflow+denorm:\n%s", rep)
	}
}

func TestMonitorSeesVMOps(t *testing.T) {
	m := monitor.New()
	vm := &VM{F: f64, E: m.Env(), StepLimit: 1 << 20}
	_, err := vm.Run(HarmonicSum, bindings(vm, map[string]float64{"n": 50}))
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.TotalOps < 100 {
		t.Fatalf("monitor saw %d ops", rep.TotalOps)
	}
}

func TestStepLimit(t *testing.T) {
	infinite := MustAssemble("spin", `
label top
	jmp top
`)
	vm := New(f64)
	vm.StepLimit = 1000
	if _, err := vm.Run(infinite, nil); err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"loadc",
		"loadc xyz",
		"load",
		"jmp",
		"jmp nowhere",
		"label",
		"label a\nlabel a",
		"add extra",
		"loadc 1 2",
	}
	for _, src := range bad {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("assembled %q without error", src)
		}
	}
}

func TestStackErrors(t *testing.T) {
	vm := New(f64)
	for _, src := range []string{"add", "pop", "ret", "store x", "sqrt", "fma", "swap", "jeq l\nlabel l"} {
		p := MustAssemble("t", src)
		if _, err := vm.Run(p, nil); err == nil {
			t.Errorf("%q ran without stack underflow", src)
		}
	}
}

func TestStackOpsAndFMA(t *testing.T) {
	vm := New(f64)
	p := MustAssemble("t", `
	loadc 2
	loadc 3
	loadc 4
	fma        ; 2*3 + 4 = 10
	loadc 5
	swap       ; stack: 5, 10
	sub        ; 5 - 10 = -5
	abs
	dup
	mul        ; 25
	neg
	ret
`)
	res, err := vm.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f64.ToFloat64(res); got != -25 {
		t.Fatalf("result %v, want -25", got)
	}
}

func TestUnboundVariableIsNaN(t *testing.T) {
	vm := New(f64)
	res, err := vm.Run(MustAssemble("t", "load nothing\nret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f64.IsNaN(res) {
		t.Fatalf("unbound load = %x", res)
	}
}

func TestImplicitReturnAndEmptyStack(t *testing.T) {
	vm := New(f64)
	res, err := vm.Run(MustAssemble("t", "loadc 7"), nil)
	if err != nil || f64.ToFloat64(res) != 7 {
		t.Fatalf("implicit return: %v %v", res, err)
	}
	res, err = vm.Run(MustAssemble("t", "nop"), nil)
	if err != nil || !f64.IsZero(res) {
		t.Fatalf("empty program: %v %v", res, err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	for _, p := range SamplePrograms() {
		asm := p.Disassemble()
		back, err := Assemble(p.Name, asm)
		if err != nil {
			t.Fatalf("%s: reassemble: %v\n%s", p.Name, err, asm)
		}
		if len(back.Code) != len(p.Code) {
			t.Fatalf("%s: code length changed", p.Name)
		}
		// Behavioural check on harmonic.
		if p.Name == "harmonic-sum" {
			vm := New(f64)
			a, _ := vm.Run(p, bindings(vm, map[string]float64{"n": 20}))
			b, _ := vm.Run(back, bindings(vm, map[string]float64{"n": 20}))
			if a != b {
				t.Fatalf("disassembly changed behaviour")
			}
		}
	}
}

func TestVMHarmonicMatchesKernel(t *testing.T) {
	// The VM program and the Go-coded kernel implement the same
	// algorithm; on the same softfloat they must agree bit for bit in
	// every format.
	for _, f := range []ieee754.Format{ieee754.Binary16, ieee754.Binary32, ieee754.Binary64} {
		vm := New(f)
		var e ieee754.Env
		n := 500
		vmRes, err := vm.Run(HarmonicSum, map[string]uint64{
			"n": f.FromFloat64(&e, float64(n)),
		})
		if err != nil {
			t.Fatal(err)
		}
		var ke ieee754.Env
		kernelRes := kernels.SumNaive(n).Run(&ke, f)
		if vmRes != kernelRes {
			t.Fatalf("%s: VM %x vs kernel %x", f.Name, vmRes, kernelRes)
		}
	}
}

func TestVMInBinary16(t *testing.T) {
	// The harmonic sum in binary16 stalls early from absorption —
	// distinctly below the binary64 value.
	vm16 := New(ieee754.Binary16)
	res16, err := vm16.Run(HarmonicSum, bindings(vm16, map[string]float64{"n": 2000}))
	if err != nil {
		t.Fatal(err)
	}
	vm64 := New(f64)
	res64, _ := vm64.Run(HarmonicSum, bindings(vm64, map[string]float64{"n": 2000}))
	h16 := ieee754.Binary16.ToFloat64(res16)
	h64 := f64.ToFloat64(res64)
	if !(h16 < h64-0.3) {
		t.Fatalf("binary16 harmonic %v vs binary64 %v: expected visible loss", h16, h64)
	}
}
