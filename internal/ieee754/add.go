package ieee754

// Add returns a + b rounded per the environment.
func (f Format) Add(e *Env, a, b uint64) uint64 {
	e.begin()
	r := f.addSub(e, a, b, false)
	return e.finish("add", f, 2, a, b, 0, r)
}

// Sub returns a - b rounded per the environment.
func (f Format) Sub(e *Env, a, b uint64) uint64 {
	e.begin()
	r := f.addSub(e, a, b, true)
	return e.finish("sub", f, 2, a, b, 0, r)
}

// addSub implements both addition and subtraction; negate flips the sign
// of b.
func (f Format) addSub(e *Env, a, b uint64, negate bool) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.propagateNaN(e, a, b)
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	sa := f.SignBit(a)
	sb := f.SignBit(b) != negate

	aInf, bInf := f.IsInf(a, 0), f.IsInf(b, 0)
	switch {
	case aInf && bInf:
		if sa != sb {
			// inf + (-inf): invalid, default NaN.
			e.raise(FlagInvalid)
			return f.QNaN()
		}
		return f.Inf(sa)
	case aInf:
		return f.Inf(sa)
	case bInf:
		return f.Inf(sb)
	}

	aZero, bZero := f.IsZero(a), f.IsZero(b)
	switch {
	case aZero && bZero:
		if sa == sb {
			return f.Zero(sa)
		}
		// Opposite-signed zeros sum to +0 except toward-negative.
		return f.Zero(e.Rounding == TowardNegative)
	case aZero:
		return f.withSign(b, sb)
	case bZero:
		return a
	}

	ua := f.unpackFinite(a)
	ub := f.unpackFinite(b)
	ua.sign = sa
	ub.sign = sb
	if ua.sign == ub.sign {
		return f.addMags(e, ua, ub)
	}
	return f.subMags(e, ua, ub)
}

// withSign returns the encoding x with sign forced to s (used to apply a
// Sub negation to the b operand).
func (f Format) withSign(x uint64, s bool) uint64 {
	x &^= f.signMask()
	if s {
		x |= f.signMask()
	}
	return x
}

// addMags adds two same-signed magnitudes.
func (f Format) addMags(e *Env, a, b unpacked) uint64 {
	if a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig) {
		a, b = b, a
	}
	d := uint(a.exp - b.exp)
	sigB := shiftRightJam(b.sig, d)
	sum := a.sig + sigB // may carry out of 64 bits
	exp := a.exp
	if sum < a.sig {
		// Carry out: shift right one with jam, raise exponent.
		sum = sum>>1 | sum&1 | 1<<63
		exp++
	}
	return f.roundPack(e, a.sign, exp, sum, false)
}

// subMags subtracts two opposite-signed magnitudes (computes
// sign(a) * (|a| - |b|)). It works in 128 bits so that sticky-bit
// handling is exact even under heavy alignment shifts.
func (f Format) subMags(e *Env, a, b unpacked) uint64 {
	if a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig) {
		a, b = b, a
		a.sign = !b.sign
	}
	if a.exp == b.exp && a.sig == b.sig {
		// Exact cancellation: +0, except -0 when rounding toward
		// negative infinity.
		return f.Zero(e.Rounding == TowardNegative)
	}
	d := uint(a.exp - b.exp)
	av := uint128{a.sig, 0}
	bv := uint128{b.sig, 0}
	sticky := false
	if d >= 128 {
		// b is far below a's 128-bit window: subtracting it turns
		// into "a minus epsilon".
		bv = uint128{}
		if b.sig != 0 {
			sticky = true
		}
	} else {
		if bv.shrLoses(d) {
			sticky = true
		}
		bv = bv.shr(d)
	}
	diff := av.sub(bv)
	if sticky {
		// The true subtrahend was strictly larger than the shifted
		// one, so the true difference lies strictly between diff-1
		// and diff. Represent it as (diff-1) + sticky.
		diff = diff.sub(uint128{0, 1})
	}
	return f.roundPack128(e, a.sign, a.exp, diff, sticky)
}
