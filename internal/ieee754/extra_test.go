package ieee754

import (
	"math"
	"testing"
)

func TestNextUpDownMatchesHardware(t *testing.T) {
	rng := newRng(t)
	for _, a := range specials64() {
		got := Binary64.NextUp(a)
		want := b64(math.Nextafter(f64(a), math.Inf(1)))
		if Binary64.IsNaN(a) {
			if !Binary64.IsNaN(got) {
				t.Fatalf("nextUp(NaN) = %x", got)
			}
			continue
		}
		// math.Nextafter(+Inf, +Inf) = +Inf; matches.
		if got != want && !(f64(a) == 0 && got == Binary64.MinSubnormal()) {
			t.Fatalf("nextUp(%x~%v) = %x (%v), want %x (%v)",
				a, f64(a), got, f64(got), want, f64(want))
		}
	}
	for i := 0; i < 100000; i++ {
		a := randBits64(rng)
		if Binary64.IsNaN(a) {
			continue
		}
		up := Binary64.NextUp(a)
		down := Binary64.NextDown(a)
		wantUp := b64(math.Nextafter(f64(a), math.Inf(1)))
		wantDown := b64(math.Nextafter(f64(a), math.Inf(-1)))
		// Nextafter(±0, +inf) gives +minSub; NextUp(-0) also minSub
		// but Nextafter keeps the zero-sign path identical, so direct
		// comparison works except at -0 where hardware returns +minSub
		// too.
		if f64(a) == 0 {
			if up != Binary64.MinSubnormal() {
				t.Fatalf("nextUp(zero %x) = %x", a, up)
			}
			continue
		}
		if up != wantUp {
			t.Fatalf("nextUp(%v) = %v want %v", f64(a), f64(up), f64(wantUp))
		}
		if down != wantDown {
			t.Fatalf("nextDown(%v) = %v want %v", f64(a), f64(down), f64(wantDown))
		}
	}
}

func TestNextUpDownInverse(t *testing.T) {
	rng := newRng(t)
	for i := 0; i < 50000; i++ {
		a := randBits64(rng)
		if Binary64.IsNaN(a) || Binary64.IsInf(a, 0) || Binary64.IsZero(a) {
			continue
		}
		if got := Binary64.NextDown(Binary64.NextUp(a)); got != a {
			// The only asymmetry is around zero crossings.
			if !Binary64.IsZero(got) && !Binary64.IsZero(a) {
				t.Fatalf("nextDown(nextUp(%x)) = %x", a, got)
			}
		}
	}
}

func TestScaleBMatchesHardware(t *testing.T) {
	rng := newRng(t)
	var e Env
	for i := 0; i < 100000; i++ {
		a := randBits64(rng)
		k := rng.Intn(400) - 200
		got := Binary64.ScaleB(&e, a, k)
		want := b64(math.Ldexp(f64(a), k))
		if !sameFloat64(got, want) {
			t.Fatalf("scaleB(%v, %d) = %v want %v", f64(a), k, f64(got), f64(want))
		}
	}
}

func TestLogB(t *testing.T) {
	var e Env
	cases := []struct {
		v    float64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {0.5, -1}, {0.75, -1},
		{1e-308, -1024}, {-8, 3},
	}
	for _, c := range cases {
		if got := Binary64.LogB(&e, b64(c.v)); got != c.want {
			t.Errorf("logB(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	e = Env{}
	Binary64.LogB(&e, b64(0))
	if !e.LastRaised.Has(FlagDivByZero) {
		t.Error("logB(0) should raise divbyzero")
	}
	e = Env{}
	Binary64.LogB(&e, Binary64.QNaN())
	if !e.LastRaised.Has(FlagInvalid) {
		t.Error("logB(NaN) should raise invalid")
	}
}

func TestUlp(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, 0x1p-52},
		{2, 0x1p-51},
		{0.5, 0x1p-53},
		{1e-308, 0}, // subnormal territory checked below
	}
	for _, c := range cases[:3] {
		if got := f64(Binary64.Ulp(b64(c.x))); got != c.want {
			t.Errorf("ulp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if Binary64.Ulp(Binary64.MinSubnormal()) != Binary64.MinSubnormal() {
		t.Error("ulp of min subnormal")
	}
	if Binary64.Ulp(b64(0)) != Binary64.MinSubnormal() {
		t.Error("ulp of zero")
	}
	if !Binary64.IsNaN(Binary64.Ulp(Binary64.Inf(false))) {
		t.Error("ulp of inf")
	}
	// ulp relates to NextUp for positive normals.
	rng := newRng(t)
	var e Env
	for i := 0; i < 20000; i++ {
		a := Binary64.Abs(randBits64(rng))
		if !Binary64.IsFinite(a) || Binary64.IsZero(a) || Binary64.frac(a) == Binary64.fracMask() {
			continue
		}
		gap := Binary64.Sub(&e, Binary64.NextUp(a), a)
		if gap != Binary64.Ulp(a) {
			t.Fatalf("ulp(%v): gap %v vs ulp %v", f64(a), f64(gap), f64(Binary64.Ulp(a)))
		}
	}
}

func TestBfloat16Format(t *testing.T) {
	if !Bfloat16.Valid() {
		t.Fatal("bfloat16 invalid")
	}
	if Bfloat16.Bias() != 127 || Bfloat16.Precision() != 8 {
		t.Fatal("bfloat16 parameters")
	}
	// bfloat16 has binary32's range: max finite ~3.39e38.
	max := Bfloat16.ToFloat64(Bfloat16.MaxFinite(false))
	if max < 3e38 || max > 4e38 {
		t.Fatalf("bfloat16 max = %v", max)
	}
	// ...but dramatically less precision: 256 + 1 rounds to 256.
	var e Env
	c256 := Bfloat16.FromFloat64(&e, 256)
	one := Bfloat16.One(false)
	if r := Bfloat16.Add(&e, c256, one); r != c256 {
		t.Fatalf("bfloat16 256+1 = %v", Bfloat16.ToFloat64(r))
	}
	// binary16 keeps it (p=11).
	h256 := Binary16.FromFloat64(&e, 256)
	hone := Binary16.One(false)
	if r := Binary16.Add(&e, h256, hone); Binary16.ToFloat64(r) != 257 {
		t.Fatalf("binary16 256+1 = %v", Binary16.ToFloat64(r))
	}
}

// Bfloat16 ops verified through float64 (valid: p=8, so 53 >= 2p+2).
func TestBfloat16OpsViaDoubleRounding(t *testing.T) {
	var e Env
	narrow := func(v float64) uint64 {
		var s Env
		return Binary64.Convert(&s, Bfloat16, math.Float64bits(v))
	}
	rng := newRng(t)
	for i := 0; i < 200000; i++ {
		a := rng.Uint64() & 0xffff
		b := rng.Uint64() & 0xffff
		va, vb := Bfloat16.ToFloat64(a), Bfloat16.ToFloat64(b)
		checks := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"add", Bfloat16.Add(&e, a, b), narrow(va + vb)},
			{"sub", Bfloat16.Sub(&e, a, b), narrow(va - vb)},
			{"mul", Bfloat16.Mul(&e, a, b), narrow(va * vb)},
			{"div", Bfloat16.Div(&e, a, b), narrow(va / vb)},
		}
		for _, c := range checks {
			if Bfloat16.IsNaN(c.got) && Bfloat16.IsNaN(c.want) {
				continue
			}
			if c.got != c.want {
				t.Fatalf("bf16 %s(%#04x~%v, %#04x~%v): got %#04x want %#04x",
					c.name, a, va, b, vb, c.got, c.want)
			}
		}
	}
}

func TestTrapping(t *testing.T) {
	var e Env
	// Default: no trap, sticky flag only — the Exception Signal truth.
	r, err := Binary64.DivT(&e, 0, b64(1), b64(0))
	if err != nil {
		t.Fatalf("unmasked trap fired: %v", err)
	}
	if !Binary64.IsInf(r, +1) {
		t.Fatalf("result %v", f64(r))
	}
	// Enable the divide-by-zero trap: now the same operation reports.
	r, err = Binary64.DivT(&e, FlagDivByZero, b64(1), b64(0))
	if err == nil {
		t.Fatal("masked trap did not fire")
	}
	te, ok := err.(*TrapError)
	if !ok || te.Raised != FlagDivByZero || te.Op != "div" {
		t.Fatalf("trap error: %+v", err)
	}
	if te.Result != r || !Binary64.IsInf(r, +1) {
		t.Fatal("trap should carry the would-be result")
	}
	if te.Error() == "" {
		t.Fatal("empty trap message")
	}
	// Inexact trap on an exact op: silent.
	if _, err := Binary64.AddT(&e, FlagInexact, b64(1), b64(2)); err != nil {
		t.Fatalf("exact add trapped: %v", err)
	}
	// Invalid trap via sqrt.
	if _, err := Binary64.SqrtT(&e, FlagInvalid, b64(-1)); err == nil {
		t.Fatal("sqrt(-1) trap missing")
	}
	// Overflow trap via mul, sub path too.
	if _, err := Binary64.MulT(&e, FlagOverflow, Binary64.MaxFinite(false), b64(2)); err == nil {
		t.Fatal("overflow trap missing")
	}
	if _, err := Binary64.SubT(&e, FlagInvalid, Binary64.Inf(false), Binary64.Inf(false)); err == nil {
		t.Fatal("inf-inf trap missing")
	}
}

func TestDecomposeInt(t *testing.T) {
	cases := []struct {
		v    float64
		sig  uint64
		exp  int
		sign bool
	}{
		{1, 1, 0, false},
		{3, 3, 0, false},
		{0.5, 1, -1, false},
		{-6, 3, 1, true},
		{0.1, 0, 0, false}, // checked by reconstruction below
	}
	for _, c := range cases[:4] {
		sign, sig, exp := Binary64.DecomposeInt(b64(c.v))
		if sign != c.sign || sig != c.sig || exp != c.exp {
			t.Errorf("decompose(%v) = %v, %d, %d", c.v, sign, sig, exp)
		}
	}
	// Round trip: reconstruct via Ldexp.
	rng := newRng(t)
	for i := 0; i < 50000; i++ {
		a := randBits64(rng)
		if !Binary64.IsFinite(a) {
			continue
		}
		sign, sig, exp := Binary64.DecomposeInt(a)
		v := math.Ldexp(float64(sig), exp)
		if sign {
			v = -v
		}
		if Binary64.IsZero(a) {
			if v != 0 {
				t.Fatalf("zero decompose broke")
			}
			continue
		}
		if v != f64(a) {
			t.Fatalf("decompose(%v) reconstructed %v (sig=%d exp=%d)", f64(a), v, sig, exp)
		}
		if sig&1 == 0 && sig != 0 {
			t.Fatalf("sig %d has trailing zeros", sig)
		}
	}
}
