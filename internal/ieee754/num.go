package ieee754

import "fmt"

// Num is a convenience wrapper pairing an encoding with its format, for
// code that wants value-like ergonomics instead of raw bit patterns.
// Arithmetic methods take the environment explicitly, like the Format
// API, and panic on format mismatches (a programming error, not a
// numeric condition).
type Num struct {
	F Format
	B uint64
}

// N constructs a Num in format f from a Go float64.
func N(f Format, v float64) Num {
	var e Env
	return Num{f, f.FromFloat64(&e, v)}
}

func (n Num) check(m Num) {
	if n.F != m.F {
		panic(fmt.Sprintf("ieee754: format mismatch %s vs %s", n.F.Name, m.F.Name))
	}
}

// Add returns n + m.
func (n Num) Add(e *Env, m Num) Num { n.check(m); return Num{n.F, n.F.Add(e, n.B, m.B)} }

// Sub returns n - m.
func (n Num) Sub(e *Env, m Num) Num { n.check(m); return Num{n.F, n.F.Sub(e, n.B, m.B)} }

// Mul returns n * m.
func (n Num) Mul(e *Env, m Num) Num { n.check(m); return Num{n.F, n.F.Mul(e, n.B, m.B)} }

// Div returns n / m.
func (n Num) Div(e *Env, m Num) Num { n.check(m); return Num{n.F, n.F.Div(e, n.B, m.B)} }

// FMA returns n*m + c with a single rounding.
func (n Num) FMA(e *Env, m, c Num) Num {
	n.check(m)
	n.check(c)
	return Num{n.F, n.F.FMA(e, n.B, m.B, c.B)}
}

// Sqrt returns the square root of n.
func (n Num) Sqrt(e *Env) Num { return Num{n.F, n.F.Sqrt(e, n.B)} }

// Neg returns -n (sign-bit flip; applies to NaNs too).
func (n Num) Neg() Num { return Num{n.F, n.F.Neg(n.B)} }

// Abs returns |n|.
func (n Num) Abs() Num { return Num{n.F, n.F.Abs(n.B)} }

// Eq reports n == m with IEEE semantics.
func (n Num) Eq(e *Env, m Num) bool { n.check(m); return n.F.Eq(e, n.B, m.B) }

// Lt reports n < m with IEEE semantics.
func (n Num) Lt(e *Env, m Num) bool { n.check(m); return n.F.Lt(e, n.B, m.B) }

// IsNaN reports whether n is a NaN.
func (n Num) IsNaN() bool { return n.F.IsNaN(n.B) }

// Float64 returns the value widened to a Go float64.
func (n Num) Float64() float64 { return n.F.ToFloat64(n.B) }

// String renders the value in decimal.
func (n Num) String() string { return n.F.String(n.B) }
