package ieee754

// Div returns a / b rounded per the environment. Division of a finite
// nonzero value by zero raises divide-by-zero and returns a signed
// infinity; 0/0 and inf/inf raise invalid and return the default NaN.
func (f Format) Div(e *Env, a, b uint64) uint64 {
	e.begin()
	r := f.div(e, a, b)
	return e.finish("div", f, 2, a, b, 0, r)
}

func (f Format) div(e *Env, a, b uint64) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.propagateNaN(e, a, b)
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	sign := f.SignBit(a) != f.SignBit(b)

	aInf, bInf := f.IsInf(a, 0), f.IsInf(b, 0)
	aZero, bZero := f.IsZero(a), f.IsZero(b)
	switch {
	case aInf && bInf, aZero && bZero:
		e.raise(FlagInvalid)
		return f.QNaN()
	case aInf:
		return f.Inf(sign)
	case bInf:
		return f.Zero(sign)
	case bZero:
		e.raise(FlagDivByZero)
		return f.Inf(sign)
	case aZero:
		return f.Zero(sign)
	}

	ua := f.unpackFinite(a)
	ub := f.unpackFinite(b)
	// Compute q = floor(sigA * 2^63 / sigB). Both significands are in
	// [2^63, 2^64), so q is in (2^62, 2^64). bits.Div64 requires
	// hi < divisor, which holds since sigA/2 < 2^63 <= sigB.
	q, rem := div64x63(ua.sig, ub.sig)
	sticky := rem != 0
	exp := ua.exp - ub.exp
	if q&(1<<63) == 0 {
		q <<= 1
		exp--
	}
	return f.roundPack(e, sign, exp, q, sticky)
}
