package ieee754

// Property tests over RANDOM formats: the softfloat is parametric in
// (ExpBits, FracBits), so its invariants must hold for shapes nobody
// ships, not just the standard three. mpfloat-free checks only (this
// package cannot import mpfloat); arithmetic correctness for custom
// formats is covered by the FP8 exhaustive tests and the bfloat16
// double-rounding tests — here we verify structural invariants.

import (
	"math/rand"
	"testing"
)

func randFormat(rng *rand.Rand) Format {
	return Format{
		ExpBits:  uint(rng.Intn(9) + 3),  // 3..11
		FracBits: uint(rng.Intn(50) + 3), // 3..52
		Name:     "rand",
	}
}

func TestRandomFormatsStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var e Env
	for trial := 0; trial < 200; trial++ {
		f := randFormat(rng)
		if !f.Valid() {
			t.Fatalf("generated invalid format %+v", f)
		}
		// Constants classify correctly.
		checks := []struct {
			x    uint64
			want Class
		}{
			{f.Zero(false), ClassPosZero},
			{f.Zero(true), ClassNegZero},
			{f.Inf(false), ClassPosInf},
			{f.Inf(true), ClassNegInf},
			{f.QNaN(), ClassQuietNaN},
			{f.SNaN(), ClassSignalingNaN},
			{f.One(false), ClassPosNormal},
			{f.MaxFinite(true), ClassNegNormal},
			{f.MinSubnormal(), ClassPosSubnormal},
			{f.MinNormal(), ClassPosNormal},
		}
		for _, c := range checks {
			if got := f.Classify(c.x); got != c.want {
				t.Fatalf("%+v: classify(%x) = %v, want %v", f, c.x, got, c.want)
			}
		}
		// 1 + 1 == 2 exactly in every format.
		two := f.Add(&e, f.One(false), f.One(false))
		if f.ToFloat64(two) != 2 {
			t.Fatalf("%+v: 1+1 = %v", f, f.ToFloat64(two))
		}
		// x / x == 1 for a handful of ordinary values.
		for _, v := range []float64{3, 0.5, 7.25} {
			x := f.FromFloat64(&e, v)
			if q := f.Div(&e, x, x); q != f.One(false) {
				t.Fatalf("%+v: %v/%v = %x", f, v, v, q)
			}
		}
		// NextUp chains upward through the whole low range without
		// skipping: from +0, p+2 steps stay ordered.
		x := f.Zero(false)
		for i := 0; i < int(f.Precision())+2; i++ {
			nx := f.NextUp(x)
			if f.CompareQuiet(&e, nx, x) != Greater {
				t.Fatalf("%+v: nextUp not increasing at %x", f, x)
			}
			x = nx
		}
		// MaxFinite + MaxFinite overflows to inf; MinSubnormal/2
		// underflows to zero (RNE).
		if r := f.Add(&e, f.MaxFinite(false), f.MaxFinite(false)); !f.IsInf(r, +1) {
			t.Fatalf("%+v: max+max = %x", f, r)
		}
		if r := f.Div(&e, f.MinSubnormal(), f.FromFloat64(&e, 2)); r != f.Zero(false) {
			t.Fatalf("%+v: minSub/2 = %x", f, r)
		}
		// Widening to binary64 and back is the identity for finite
		// values (every such format embeds in binary64 given
		// FracBits <= 52 and ExpBits <= 11).
		for i := 0; i < 50; i++ {
			bitsLen := f.TotalBits()
			x := rng.Uint64() & ((1 << bitsLen) - 1)
			if f.IsNaN(x) {
				continue
			}
			w := f.Convert(&e, Binary64, x)
			back := Binary64.Convert(&e, f, w)
			if back != x {
				t.Fatalf("%+v: roundtrip %x -> %x", f, x, back)
			}
		}
		// Commutativity on random pairs.
		for i := 0; i < 50; i++ {
			bitsLen := f.TotalBits()
			a := rng.Uint64() & ((1 << bitsLen) - 1)
			b := rng.Uint64() & ((1 << bitsLen) - 1)
			s1 := f.Add(&e, a, b)
			s2 := f.Add(&e, b, a)
			if s1 != s2 && !(f.IsNaN(s1) && f.IsNaN(s2)) {
				t.Fatalf("%+v: add not commutative: %x %x", f, a, b)
			}
			p1 := f.Mul(&e, a, b)
			p2 := f.Mul(&e, b, a)
			if p1 != p2 && !(f.IsNaN(p1) && f.IsNaN(p2)) {
				t.Fatalf("%+v: mul not commutative: %x %x", f, a, b)
			}
		}
	}
}

func TestRandomFormatsAgainstBinary64ViaDoubleRounding(t *testing.T) {
	// For formats with p <= 25 (2p+2 <= 52 < 53), binary64 hardware is
	// a complete oracle for add/sub/mul/div by the double-rounding
	// theorem. Sample random such formats and operands.
	rng := rand.New(rand.NewSource(78))
	var e Env
	for trial := 0; trial < 60; trial++ {
		f := Format{
			ExpBits:  uint(rng.Intn(8) + 3),  // 3..10
			FracBits: uint(rng.Intn(22) + 3), // 3..24 => p <= 25
			Name:     "rand",
		}
		mask := uint64(1<<f.TotalBits()) - 1
		narrow := func(v float64) uint64 {
			var s Env
			return Binary64.Convert(&s, f, b64(v))
		}
		for i := 0; i < 3000; i++ {
			a := rng.Uint64() & mask
			b := rng.Uint64() & mask
			if f.IsNaN(a) || f.IsNaN(b) {
				continue
			}
			va, vb := f.ToFloat64(a), f.ToFloat64(b)
			cases := []struct {
				name string
				got  uint64
				want uint64
			}{
				{"add", f.Add(&e, a, b), narrow(va + vb)},
				{"sub", f.Sub(&e, a, b), narrow(va - vb)},
				{"mul", f.Mul(&e, a, b), narrow(va * vb)},
				{"div", f.Div(&e, a, b), narrow(va / vb)},
			}
			for _, c := range cases {
				if f.IsNaN(c.got) && f.IsNaN(c.want) {
					continue
				}
				if c.got != c.want {
					t.Fatalf("%+v: %s(%v, %v) = %x, want %x",
						f, c.name, va, vb, c.got, c.want)
				}
			}
		}
	}
}
