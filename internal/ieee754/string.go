package ieee754

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// String renders the encoding x as a decimal string. For the standard
// formats the value is converted exactly to float64 (widening) and
// printed with the shortest representation that round-trips. NaNs render
// with their payload when it is non-canonical.
func (f Format) String(x uint64) string {
	if f.IsNaN(x) {
		kind := "qNaN"
		if f.IsSignalingNaN(x) {
			kind = "sNaN"
		}
		payload := f.frac(x) &^ f.quietBit()
		sign := ""
		if f.SignBit(x) {
			sign = "-"
		}
		if payload != 0 {
			return fmt.Sprintf("%s%s(0x%x)", sign, kind, payload)
		}
		return sign + kind
	}
	v := f.ToFloat64(x)
	if v == 0 && f.SignBit(x) {
		return "-0"
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Hex renders the encoding in C99 hexadecimal-significand form
// (e.g. 0x1.8p+1 for 3.0), which is exact for any finite value.
func (f Format) Hex(x uint64) string {
	switch {
	case f.IsNaN(x):
		return f.String(x)
	case f.IsInf(x, 0):
		if f.SignBit(x) {
			return "-Inf"
		}
		return "+Inf"
	case f.IsZero(x):
		if f.SignBit(x) {
			return "-0x0p+0"
		}
		return "0x0p+0"
	}
	u := f.unpackFinite(x)
	sign := ""
	if u.sign {
		sign = "-"
	}
	// sig has MSB at bit 63; express as 1.<frac> * 2^exp.
	frac := u.sig << 1 // drop the implicit bit
	var sb strings.Builder
	for frac != 0 {
		digit := frac >> 60
		sb.WriteByte("0123456789abcdef"[digit])
		frac <<= 4
	}
	mantissa := sb.String()
	if mantissa == "" {
		return fmt.Sprintf("%s0x1p%+d", sign, u.exp)
	}
	return fmt.Sprintf("%s0x1.%sp%+d", sign, mantissa, u.exp)
}

// BitString renders the encoding as sign|exponent|fraction binary
// fields, e.g. "0|01111111111|0000..." for 1.0 in binary64.
func (f Format) BitString(x uint64) string {
	sign := byte('0')
	if f.SignBit(x) {
		sign = '1'
	}
	expStr := fmt.Sprintf("%0*b", f.ExpBits, f.biasedExp(x))
	fracStr := fmt.Sprintf("%0*b", f.FracBits, f.frac(x))
	return fmt.Sprintf("%c|%s|%s", sign, expStr, fracStr)
}

// Parse converts a decimal or hexadecimal floating point literal to an
// encoding in format f, rounding per the environment.
//
// Parsing goes through strconv's correctly rounded float64 conversion and
// then narrows. For binary32/binary16 targets this can in principle
// double-round on values within a half-ulp sliver of a narrow-format
// boundary; exact literal tests in this repository use bit patterns
// instead.
func (f Format) Parse(e *Env, s string) (uint64, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "inf", "+inf", "infinity":
		return f.Inf(false), nil
	case "-inf", "-infinity":
		return f.Inf(true), nil
	case "nan", "qnan":
		return f.QNaN(), nil
	case "-nan":
		return f.signMask() | f.QNaN(), nil
	case "snan":
		return f.SNaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("ieee754: parse %q: %w", s, err)
	}
	return f.FromFloat64(e, v), nil
}
