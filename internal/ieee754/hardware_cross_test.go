package ieee754

// Cross-validation of the softfloat against Go's hardware IEEE 754
// arithmetic. Go's float64/float32 operations are required by the spec
// to be correctly rounded (round-to-nearest-even), so under the default
// environment every binary64/binary32 operation must match bit-for-bit
// (modulo NaN payloads, which hardware varies).

import (
	"math"
	"testing"
)

const crossIters = 200000

func TestAddMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		got := Binary64.Add(&e, a, b)
		want := b64(f64(a) + f64(b))
		if !sameFloat64(got, want) {
			t.Fatalf("add(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}

func TestSubMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		got := Binary64.Sub(&e, a, b)
		want := b64(f64(a) - f64(b))
		if !sameFloat64(got, want) {
			t.Fatalf("sub(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}

func TestMulMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		got := Binary64.Mul(&e, a, b)
		want := b64(f64(a) * f64(b))
		if !sameFloat64(got, want) {
			t.Fatalf("mul(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}

func TestDivMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		got := Binary64.Div(&e, a, b)
		want := b64(f64(a) / f64(b))
		if !sameFloat64(got, want) {
			t.Fatalf("div(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}

func TestSqrtMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	for _, a := range specials64() {
		got := Binary64.Sqrt(&e, a)
		want := b64(math.Sqrt(f64(a)))
		if !sameFloat64(got, want) {
			t.Fatalf("sqrt(%x): got %x (%v) want %x (%v)",
				a, got, f64(got), want, f64(want))
		}
	}
	for i := 0; i < crossIters; i++ {
		a := randBits64(rng)
		got := Binary64.Sqrt(&e, a)
		want := b64(math.Sqrt(f64(a)))
		if !sameFloat64(got, want) {
			t.Fatalf("sqrt(%x): got %x (%v) want %x (%v)",
				a, got, f64(got), want, f64(want))
		}
	}
}

func TestFMAMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b, c uint64) {
		got := Binary64.FMA(&e, a, b, c)
		want := b64(math.FMA(f64(a), f64(b), f64(c)))
		if !sameFloat64(got, want) {
			t.Fatalf("fma(%x, %x, %x): got %x (%v) want %x (%v)",
				a, b, c, got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			for _, c := range sp {
				check(a, b, c)
			}
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng), randBits64(rng))
	}
}

func TestRemMatchesHardware64(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		got := Binary64.Rem(&e, a, b)
		want := b64(math.Remainder(f64(a), f64(b)))
		if !sameFloat64(got, want) {
			t.Fatalf("rem(%x~%v, %x~%v): got %x (%v) want %x (%v)",
				a, f64(a), b, f64(b), got, f64(got), want, f64(want))
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}

func TestMul32MatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.Mul(&e, a, b)
		want := b32(f32(a) * f32(b))
		if !sameFloat32(got, want) {
			t.Fatalf("mul32(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f32(got), want, f32(want))
		}
	}
}

func TestAdd32MatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.Add(&e, a, b)
		want := b32(f32(a) + f32(b))
		if !sameFloat32(got, want) {
			t.Fatalf("add32(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f32(got), want, f32(want))
		}
	}
}

func TestDiv32MatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.Div(&e, a, b)
		want := b32(f32(a) / f32(b))
		if !sameFloat32(got, want) {
			t.Fatalf("div32(%x, %x): got %x (%v) want %x (%v)",
				a, b, got, f32(got), want, f32(want))
		}
	}
}

func TestConvert64To32MatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	for _, a := range specials64() {
		got := Binary64.Convert(&e, Binary32, a)
		want := b32(float32(f64(a)))
		if !sameFloat32(got, want) {
			t.Fatalf("cvt64to32(%x~%v): got %x (%v) want %x (%v)",
				a, f64(a), got, f32(got), want, f32(want))
		}
	}
	for i := 0; i < crossIters; i++ {
		a := randBits64(rng)
		got := Binary64.Convert(&e, Binary32, a)
		want := b32(float32(f64(a)))
		if !sameFloat32(got, want) {
			t.Fatalf("cvt64to32(%x~%v): got %x (%v) want %x (%v)",
				a, f64(a), got, f32(got), want, f32(want))
		}
	}
}

func TestConvert32To64Exact(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		a := uint64(uint32(rng.Uint64()))
		got := Binary32.Convert(&e, Binary64, a)
		want := b64(float64(f32(a)))
		if !sameFloat64(got, want) {
			t.Fatalf("cvt32to64(%x): got %x want %x", a, got, want)
		}
	}
}

func TestFromInt64MatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		v := int64(rng.Uint64())
		got := Binary64.FromInt64(&e, v)
		want := b64(float64(v))
		if got != want {
			t.Fatalf("fromInt64(%d): got %x (%v) want %x (%v)",
				v, got, f64(got), want, f64(want))
		}
	}
}

func TestToInt64MatchesHardware(t *testing.T) {
	var e Env
	e.Rounding = TowardZero // Go's int64(f) truncates
	rng := newRng(t)
	for i := 0; i < crossIters; i++ {
		a := randBits64(rng)
		v := f64(a)
		// Only compare where Go's conversion is defined (in-range).
		if math.IsNaN(v) || v >= math.MaxInt64 || v <= math.MinInt64 {
			continue
		}
		got := Binary64.ToInt64(&e, a)
		want := int64(v)
		if got != want {
			t.Fatalf("toInt64(%v): got %d want %d", v, got, want)
		}
	}
}

func TestRoundToIntegralMatchesHardware(t *testing.T) {
	rng := newRng(t)
	modes := []struct {
		m  RoundingMode
		fn func(float64) float64
	}{
		{NearestEven, math.RoundToEven},
		{NearestAway, math.Round},
		{TowardZero, math.Trunc},
		{TowardPositive, math.Ceil},
		{TowardNegative, math.Floor},
	}
	for _, mode := range modes {
		e := Env{Rounding: mode.m}
		for i := 0; i < 40000; i++ {
			a := randBits64(rng)
			got := Binary64.RoundToIntegral(&e, a)
			want := b64(mode.fn(f64(a)))
			if !sameFloat64(got, want) {
				t.Fatalf("rint[%v](%x~%v): got %x (%v) want %x (%v)",
					mode.m, a, f64(a), got, f64(got), want, f64(want))
			}
		}
	}
}

func TestCompareMatchesHardware(t *testing.T) {
	var e Env
	rng := newRng(t)
	sp := specials64()
	check := func(a, b uint64) {
		va, vb := f64(a), f64(b)
		if got, want := Binary64.Eq(&e, a, b), va == vb; got != want {
			t.Fatalf("eq(%v, %v): got %v want %v", va, vb, got, want)
		}
		if got, want := Binary64.Lt(&e, a, b), va < vb; got != want {
			t.Fatalf("lt(%v, %v): got %v want %v", va, vb, got, want)
		}
		if got, want := Binary64.Le(&e, a, b), va <= vb; got != want {
			t.Fatalf("le(%v, %v): got %v want %v", va, vb, got, want)
		}
		if got, want := Binary64.Gt(&e, a, b), va > vb; got != want {
			t.Fatalf("gt(%v, %v): got %v want %v", va, vb, got, want)
		}
		if got, want := Binary64.Ge(&e, a, b), va >= vb; got != want {
			t.Fatalf("ge(%v, %v): got %v want %v", va, vb, got, want)
		}
	}
	for _, a := range sp {
		for _, b := range sp {
			check(a, b)
		}
	}
	for i := 0; i < crossIters; i++ {
		check(randBits64(rng), randBits64(rng))
	}
}
