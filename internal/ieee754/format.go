// Package ieee754 is a from-scratch software implementation of IEEE 754
// binary floating point arithmetic.
//
// It implements the three common interchange formats (binary16, binary32,
// binary64) parametrically, with all five rounding-direction attributes,
// the five standard exception flags (plus a non-standard denormal-operand
// flag, as found on x86), fused multiply-add, square root, remainder, and
// conversions. It also models two common non-standard hardware behaviours:
// flush-to-zero (FTZ) results and denormals-are-zero (DAZ) operands.
//
// The package is the ground-truth oracle for the survey harness in this
// repository: every quiz question about floating point semantics is
// answered by executing these routines, not by a hard-coded answer key.
//
// Values are represented as raw bit patterns (uint64) interpreted by a
// Format. All arithmetic goes through an Env, which carries the rounding
// mode, sticky exception flags, FTZ/DAZ controls, and an optional
// per-operation observer used by the exception monitor.
package ieee754

import "math/bits"

// Format describes a binary interchange format: a sign bit, ExpBits
// exponent bits, and FracBits trailing-significand bits.
type Format struct {
	ExpBits  uint
	FracBits uint
	Name     string
}

// The three standard interchange formats implemented by this package.
var (
	Binary16 = Format{ExpBits: 5, FracBits: 10, Name: "binary16"}
	Binary32 = Format{ExpBits: 8, FracBits: 23, Name: "binary32"}
	Binary64 = Format{ExpBits: 11, FracBits: 52, Name: "binary64"}
)

// Class is the IEEE 754 classification of a value.
type Class uint8

const (
	ClassSignalingNaN Class = iota
	ClassQuietNaN
	ClassNegInf
	ClassNegNormal
	ClassNegSubnormal
	ClassNegZero
	ClassPosZero
	ClassPosSubnormal
	ClassPosNormal
	ClassPosInf
)

// String returns the standard name of the class.
func (c Class) String() string {
	switch c {
	case ClassSignalingNaN:
		return "signalingNaN"
	case ClassQuietNaN:
		return "quietNaN"
	case ClassNegInf:
		return "negativeInfinity"
	case ClassNegNormal:
		return "negativeNormal"
	case ClassNegSubnormal:
		return "negativeSubnormal"
	case ClassNegZero:
		return "negativeZero"
	case ClassPosZero:
		return "positiveZero"
	case ClassPosSubnormal:
		return "positiveSubnormal"
	case ClassPosNormal:
		return "positiveNormal"
	case ClassPosInf:
		return "positiveInfinity"
	}
	return "invalidClass"
}

// TotalBits is the full encoding width (1 + ExpBits + FracBits).
func (f Format) TotalBits() uint { return 1 + f.ExpBits + f.FracBits }

// Precision is the significand precision in bits, including the implicit
// leading bit (p = FracBits + 1).
func (f Format) Precision() uint { return f.FracBits + 1 }

// Bias is the exponent bias (2^(ExpBits-1) - 1).
func (f Format) Bias() int { return (1 << (f.ExpBits - 1)) - 1 }

// Emax is the maximum unbiased exponent of a finite number.
func (f Format) Emax() int { return f.Bias() }

// Emin is the minimum unbiased exponent of a normal number (1 - Bias).
func (f Format) Emin() int { return 1 - f.Bias() }

// expMask is the biased exponent field mask (all-ones means inf/NaN).
func (f Format) expMask() uint64 { return (1 << f.ExpBits) - 1 }

// fracMask is the trailing-significand field mask.
func (f Format) fracMask() uint64 { return (1 << f.FracBits) - 1 }

// signMask is the sign bit mask.
func (f Format) signMask() uint64 { return 1 << (f.ExpBits + f.FracBits) }

// quietBit is the bit in the fraction field that distinguishes quiet NaNs.
func (f Format) quietBit() uint64 { return 1 << (f.FracBits - 1) }

// mask is the mask covering all encoding bits of the format.
func (f Format) mask() uint64 {
	if f.TotalBits() >= 64 {
		return ^uint64(0)
	}
	return (1 << f.TotalBits()) - 1
}

// Valid reports whether the format parameters are usable by this package.
// The significand (with implicit bit) must fit a uint64 with one spare
// bit, and exponent fields up to 15 bits are supported.
func (f Format) Valid() bool {
	return f.ExpBits >= 2 && f.ExpBits <= 15 && f.FracBits >= 2 && f.FracBits <= 52
}

// Field accessors on raw encodings.

// SignBit reports whether the sign bit of x is set.
func (f Format) SignBit(x uint64) bool { return x&f.signMask() != 0 }

// biasedExp extracts the biased exponent field.
func (f Format) biasedExp(x uint64) uint64 { return (x >> f.FracBits) & f.expMask() }

// frac extracts the trailing significand field.
func (f Format) frac(x uint64) uint64 { return x & f.fracMask() }

// IsNaN reports whether x encodes a NaN (quiet or signaling).
func (f Format) IsNaN(x uint64) bool {
	return f.biasedExp(x) == f.expMask() && f.frac(x) != 0
}

// IsSignalingNaN reports whether x encodes a signaling NaN.
func (f Format) IsSignalingNaN(x uint64) bool {
	return f.IsNaN(x) && f.frac(x)&f.quietBit() == 0
}

// IsInf reports whether x encodes an infinity. sign > 0 restricts to
// +Inf, sign < 0 to -Inf, and sign == 0 accepts either.
func (f Format) IsInf(x uint64, sign int) bool {
	if f.biasedExp(x) != f.expMask() || f.frac(x) != 0 {
		return false
	}
	if sign > 0 {
		return !f.SignBit(x)
	}
	if sign < 0 {
		return f.SignBit(x)
	}
	return true
}

// IsZero reports whether x encodes a zero of either sign.
func (f Format) IsZero(x uint64) bool {
	return f.biasedExp(x) == 0 && f.frac(x) == 0
}

// IsSubnormal reports whether x encodes a nonzero subnormal number.
func (f Format) IsSubnormal(x uint64) bool {
	return f.biasedExp(x) == 0 && f.frac(x) != 0
}

// IsFinite reports whether x encodes a finite number (zero, subnormal or
// normal).
func (f Format) IsFinite(x uint64) bool { return f.biasedExp(x) != f.expMask() }

// Classify returns the IEEE 754 class of x.
func (f Format) Classify(x uint64) Class {
	neg := f.SignBit(x)
	switch {
	case f.IsNaN(x):
		if f.IsSignalingNaN(x) {
			return ClassSignalingNaN
		}
		return ClassQuietNaN
	case f.biasedExp(x) == f.expMask():
		if neg {
			return ClassNegInf
		}
		return ClassPosInf
	case f.IsZero(x):
		if neg {
			return ClassNegZero
		}
		return ClassPosZero
	case f.IsSubnormal(x):
		if neg {
			return ClassNegSubnormal
		}
		return ClassPosSubnormal
	default:
		if neg {
			return ClassNegNormal
		}
		return ClassPosNormal
	}
}

// Canonical constant encodings.

// Zero returns the encoding of a zero with the given sign.
func (f Format) Zero(negative bool) uint64 {
	if negative {
		return f.signMask()
	}
	return 0
}

// Inf returns the encoding of an infinity with the given sign.
func (f Format) Inf(negative bool) uint64 {
	x := f.expMask() << f.FracBits
	if negative {
		x |= f.signMask()
	}
	return x
}

// QNaN returns the canonical quiet NaN (positive sign, quiet bit set,
// remaining payload zero).
func (f Format) QNaN() uint64 {
	return f.expMask()<<f.FracBits | f.quietBit()
}

// SNaN returns a canonical signaling NaN (payload 1).
func (f Format) SNaN() uint64 {
	return f.expMask()<<f.FracBits | 1
}

// One returns the encoding of ±1.0.
func (f Format) One(negative bool) uint64 {
	x := uint64(f.Bias()) << f.FracBits
	if negative {
		x |= f.signMask()
	}
	return x
}

// MaxFinite returns the largest-magnitude finite encoding with the given
// sign.
func (f Format) MaxFinite(negative bool) uint64 {
	x := (f.expMask()-1)<<f.FracBits | f.fracMask()
	if negative {
		x |= f.signMask()
	}
	return x
}

// MinNormal returns the smallest-magnitude positive normal encoding.
func (f Format) MinNormal() uint64 { return 1 << f.FracBits }

// MinSubnormal returns the smallest-magnitude positive subnormal encoding.
func (f Format) MinSubnormal() uint64 { return 1 }

// Neg returns x with its sign bit flipped. Per IEEE 754 negate is a
// quiet, non-computational sign operation: it applies to NaNs as well and
// raises no flags.
func (f Format) Neg(x uint64) uint64 { return x ^ f.signMask() }

// Abs returns x with its sign bit cleared. Quiet, raises no flags.
func (f Format) Abs(x uint64) uint64 { return x &^ f.signMask() }

// CopySign returns x with the sign of y.
func (f Format) CopySign(x, y uint64) uint64 {
	return x&^f.signMask() | y&f.signMask()
}

// unpacked is the internal working representation of a finite nonzero
// value: (-1)^sign * (sig / 2^63) * 2^exp, with sig normalized so its
// most significant bit is bit 63.
type unpacked struct {
	sign bool
	exp  int
	sig  uint64
}

// unpackFinite decodes a finite nonzero value into normalized form.
// x must not be zero, inf, or NaN.
func (f Format) unpackFinite(x uint64) unpacked {
	var u unpacked
	u.sign = f.SignBit(x)
	e := f.biasedExp(x)
	fr := f.frac(x)
	if e == 0 {
		// Subnormal: value = fr * 2^(Emin - FracBits).
		sig := fr << (63 - f.FracBits)
		lz := uint(bits.LeadingZeros64(sig))
		u.sig = sig << lz
		u.exp = f.Emin() - int(lz)
	} else {
		u.sig = (fr | 1<<f.FracBits) << (63 - f.FracBits)
		u.exp = int(e) - f.Bias()
	}
	return u
}

// pack assembles an encoding from sign, biased exponent field, and
// fraction field, without any range checks.
func (f Format) pack(sign bool, biasedExp uint64, frac uint64) uint64 {
	x := biasedExp<<f.FracBits | frac
	if sign {
		x |= f.signMask()
	}
	return x
}

// propagateNaN implements the package's NaN propagation rule for two
// operands: if either operand is a signaling NaN, invalid is raised and
// the result is that NaN quieted; otherwise the first quiet NaN operand
// is returned unchanged. At least one operand must be a NaN.
func (f Format) propagateNaN(e *Env, a, b uint64) uint64 {
	aNaN, bNaN := f.IsNaN(a), f.IsNaN(b)
	if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
		e.raise(FlagInvalid)
	}
	switch {
	case aNaN:
		return f.quiet(a)
	case bNaN:
		return f.quiet(b)
	}
	// Unreachable when the contract is honored; return the default NaN.
	return f.QNaN()
}

// quiet returns the NaN x with its quiet bit set.
func (f Format) quiet(x uint64) uint64 { return x | f.quietBit() }

// shiftRightJam shifts x right by n, ORing any shifted-out bits into the
// least significant bit of the result ("jamming"). For n >= 64 the result
// is 0 or 1 depending on whether x was nonzero.
func shiftRightJam(x uint64, n uint) uint64 {
	if n == 0 {
		return x
	}
	if n >= 64 {
		if x != 0 {
			return 1
		}
		return 0
	}
	r := x >> n
	if x<<(64-n) != 0 {
		r |= 1
	}
	return r
}
