package ieee754

// Envelope properties of the directed rounding modes. Go's hardware
// floats only expose round-to-nearest-even, so the directed modes are
// validated against mathematical invariants instead:
//
//	RD(x op y) <= RNE(x op y) <= RU(x op y)
//	RU - RD is 0 (exact) or 1 ulp
//	RTZ equals RD for positive results and RU for negative results
//	RNA differs from RNE only on exact ties
//
// over random operands and all four basic operations plus sqrt.

import (
	"math/rand"
	"testing"
)

type opFn func(e *Env, a, b uint64) uint64

func allOps() map[string]opFn {
	return map[string]opFn{
		"add":  func(e *Env, a, b uint64) uint64 { return Binary64.Add(e, a, b) },
		"sub":  func(e *Env, a, b uint64) uint64 { return Binary64.Sub(e, a, b) },
		"mul":  func(e *Env, a, b uint64) uint64 { return Binary64.Mul(e, a, b) },
		"div":  func(e *Env, a, b uint64) uint64 { return Binary64.Div(e, a, b) },
		"sqrt": func(e *Env, a, b uint64) uint64 { return Binary64.Sqrt(e, Binary64.Abs(a)) },
	}
}

func TestDirectedRoundingEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd12ec7ed))
	var cmpEnv Env
	for name, op := range allOps() {
		for i := 0; i < 40000; i++ {
			a, b := randBits64(rng), randBits64(rng)
			rd := func() uint64 { e := Env{Rounding: TowardNegative}; return op(&e, a, b) }()
			ru := func() uint64 { e := Env{Rounding: TowardPositive}; return op(&e, a, b) }()
			rne := func() uint64 { e := Env{Rounding: NearestEven}; return op(&e, a, b) }()
			rtz := func() uint64 { e := Env{Rounding: TowardZero}; return op(&e, a, b) }()

			if Binary64.IsNaN(rne) {
				// All modes agree on NaN-ness.
				if !Binary64.IsNaN(rd) || !Binary64.IsNaN(ru) || !Binary64.IsNaN(rtz) {
					t.Fatalf("%s(%x,%x): NaN disagreement", name, a, b)
				}
				continue
			}
			// Ordering: RD <= RNE <= RU.
			if Binary64.CompareQuiet(&cmpEnv, rd, rne) == Greater {
				t.Fatalf("%s(%x,%x): RD %x > RNE %x", name, a, b, rd, rne)
			}
			if Binary64.CompareQuiet(&cmpEnv, rne, ru) == Greater {
				t.Fatalf("%s(%x,%x): RNE %x > RU %x", name, a, b, rne, ru)
			}
			// RU and RD are equal (exact) or adjacent.
			if rd != ru {
				adjacent := Binary64.NextUp(rd) == ru ||
					// -0/+0 gap counts as adjacent (same value)
					(Binary64.IsZero(rd) && Binary64.IsZero(ru))
				if !adjacent {
					t.Fatalf("%s(%x,%x): RD %x and RU %x not adjacent",
						name, a, b, rd, ru)
				}
			}
			// RTZ matches RD for non-negative true values and RU for
			// negative ones. The sign of the true value is read off
			// RD: it is strictly negative iff RD is a negative
			// nonzero (RD of a value >= 0 is never below -0).
			var want uint64
			if Binary64.SignBit(rd) && !Binary64.IsZero(rd) {
				want = ru
			} else {
				want = rd
			}
			// Zero results carry mode-dependent signs; compare values.
			if rtz != want && Binary64.CompareQuiet(&cmpEnv, rtz, want) != Equal {
				t.Fatalf("%s(%x,%x): RTZ %x, want %x", name, a, b, rtz, want)
			}
		}
	}
}

func TestNearestAwayVsNearestEven(t *testing.T) {
	// RNA agrees with RNE except on exact ties, where they differ by
	// at most 1 ulp. A disagreement must have RNA the one farther from
	// zero.
	rng := rand.New(rand.NewSource(0xaaa))
	var cmpEnv Env
	disagreements := 0
	for i := 0; i < 200000; i++ {
		a, b := randBits64(rng), randBits64(rng)
		rne := func() uint64 { e := Env{Rounding: NearestEven}; return Binary64.Add(&e, a, b) }()
		rna := func() uint64 { e := Env{Rounding: NearestAway}; return Binary64.Add(&e, a, b) }()
		if Binary64.IsNaN(rne) && Binary64.IsNaN(rna) {
			continue
		}
		if rne == rna {
			continue
		}
		disagreements++
		// RNA must be the larger in magnitude.
		if Binary64.CompareQuiet(&cmpEnv, Binary64.Abs(rna), Binary64.Abs(rne)) != Greater {
			t.Fatalf("add(%x,%x): RNA %x not away from zero vs RNE %x", a, b, rna, rne)
		}
		// And adjacent.
		if Binary64.NextUp(Binary64.Abs(rne)) != Binary64.Abs(rna) {
			t.Fatalf("add(%x,%x): RNA %x not adjacent to RNE %x", a, b, rna, rne)
		}
	}
	// Random operands rarely tie exactly, but our generator's small-
	// integer regime produces some; the test is still meaningful if
	// zero, but log for visibility.
	t.Logf("RNE/RNA disagreements: %d", disagreements)
}

func TestDirectedRoundingEnvelopeBinary16(t *testing.T) {
	// Same envelope exhaustively on binary16 single-operand sqrt and a
	// dense operand sample for add.
	var cmpEnv Env
	for x := uint64(0); x < 1<<16; x++ {
		if Binary16.IsNaN(x) {
			continue
		}
		rd := func() uint64 { e := Env{Rounding: TowardNegative}; return Binary16.Sqrt(&e, Binary16.Abs(x)) }()
		ru := func() uint64 { e := Env{Rounding: TowardPositive}; return Binary16.Sqrt(&e, Binary16.Abs(x)) }()
		if Binary16.CompareQuiet(&cmpEnv, rd, ru) == Greater {
			t.Fatalf("sqrt16(%x): RD > RU", x)
		}
		if rd != ru && Binary16.NextUp(rd) != ru {
			t.Fatalf("sqrt16(%x): RD %x, RU %x not adjacent", x, rd, ru)
		}
	}
}
