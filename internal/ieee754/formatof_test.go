package ieee754

import (
	"math"
	"testing"

	"math/rand"
)

// Reference for formatOf ops: compute in float64 hardware (exact for
// binary32 operand add/mul since they're exactly representable; for the
// wide->narrow result the theorem about 2p+2 guarantees single-rounding
// equivalence only when p_dst is small enough, so for binary64->binary32
// we instead verify against explicit exact reasoning on directed cases
// and consistency properties on random ones).

func TestAddToMatchesSingleRounding32(t *testing.T) {
	// Operands binary32, result binary32: must equal ordinary add.
	var e Env
	rng := newRng(t)
	for i := 0; i < 100000; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.AddTo(&e, Binary32, a, b)
		want := Binary32.Add(&e, a, b)
		if !sameFloat32(got, want) {
			t.Fatalf("AddTo self (%x, %x): %x vs %x", a, b, got, want)
		}
	}
}

func TestAddToWideningIsExactSum(t *testing.T) {
	// binary32 operands, binary64 result: the sum of two binary32
	// values is exactly representable in binary64, so AddTo equals the
	// hardware double sum of the widened operands.
	var e Env
	rng := newRng(t)
	for i := 0; i < 100000; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.AddTo(&e, Binary64, a, b)
		want := b64(float64(f32(a)) + float64(f32(b)))
		if !sameFloat64(got, want) {
			t.Fatalf("AddTo widening (%v, %v): %x vs %x", f32(a), f32(b), got, want)
		}
	}
}

func TestMulToWideningIsExactProduct(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < 100000; i++ {
		a := uint64(uint32(rng.Uint64()))
		b := uint64(uint32(rng.Uint64()))
		got := Binary32.MulTo(&e, Binary64, a, b)
		want := b64(float64(f32(a)) * float64(f32(b)))
		if !sameFloat64(got, want) {
			t.Fatalf("MulTo widening (%v, %v): %x vs %x", f32(a), f32(b), got, want)
		}
	}
}

func TestNarrowingAddToAvoidsDoubleRounding(t *testing.T) {
	// Construct a binary64 pair whose exact sum lies in the
	// double-rounding sliver: rounding first to binary64 then to
	// binary32 gives a different answer than rounding the exact sum
	// once to binary32.
	//
	// a = 1 + 2^-24 (the binary32 tie point between 1.0 and 1+2^-23;
	// exact in binary64), b = 2^-54 (below binary64's round bit for
	// this exponent). Exact sum s = 1 + 2^-24 + 2^-54.
	//   - Single rounding to binary32: s is strictly above the tie,
	//     so it rounds UP to 1 + 2^-23.
	//   - Two-step: binary64 sees round bit (2^-53) = 0 with sticky
	//     2^-54, rounds DOWN to exactly 1 + 2^-24; converting that to
	//     binary32 is now an exact tie, and ties-to-even picks 1.0.
	var e Env
	a := b64(1 + math.Ldexp(1, -24))
	b := b64(math.Ldexp(1, -54))

	direct := Binary64.AddTo(&e, Binary32, a, b)
	twoStep64 := Binary64.Add(&e, a, b)
	twoStep := Binary64.Convert(&e, Binary32, twoStep64)

	wantDirect := b32(float32(1 + math.Ldexp(1, -23)))
	wantTwoStep := b32(1.0)
	if direct != wantDirect {
		t.Fatalf("single-rounded AddTo = %x (%v), want %x", direct, f32(direct), wantDirect)
	}
	if twoStep != wantTwoStep {
		t.Fatalf("double-rounded path = %x (%v), want %x", twoStep, f32(twoStep), wantTwoStep)
	}
	if direct == twoStep {
		t.Fatal("expected the two paths to differ (double rounding)")
	}
}

func TestFormatOfSpecials(t *testing.T) {
	var e Env
	if r := Binary64.AddTo(&e, Binary32, Binary64.Inf(false), Binary64.Inf(true)); !Binary32.IsNaN(r) {
		t.Fatal("inf + -inf")
	}
	if !e.LastRaised.Has(FlagInvalid) {
		t.Fatal("invalid flag")
	}
	if r := Binary64.MulTo(&e, Binary32, b64(0), Binary64.Inf(false)); !Binary32.IsNaN(r) {
		t.Fatal("0*inf")
	}
	if r := Binary64.DivTo(&e, Binary32, b64(1), b64(0)); !Binary32.IsInf(r, +1) {
		t.Fatal("1/0")
	}
	if !e.LastRaised.Has(FlagDivByZero) {
		t.Fatal("divzero flag")
	}
	if r := Binary64.SubTo(&e, Binary32, b64(2.5), b64(2.5)); r != 0 {
		t.Fatalf("x-x = %x", r)
	}
	if r := Binary64.AddTo(&e, Binary32, Binary64.QNaN(), b64(1)); !Binary32.IsNaN(r) {
		t.Fatal("NaN propagation")
	}
	// Zero + finite passes through a single rounding.
	if r := Binary64.AddTo(&e, Binary32, b64(0), b64(0.1)); r != b32(float32(0.1)) {
		t.Fatalf("0 + 0.1 -> %x", r)
	}
}

func TestDivToConsistent(t *testing.T) {
	// DivTo with dst == src equals plain Div.
	var e Env
	rng := rand.New(rand.NewSource(0xd1f))
	for i := 0; i < 50000; i++ {
		a, b := randBits64(rng), randBits64(rng)
		got := Binary64.DivTo(&e, Binary64, a, b)
		want := Binary64.Div(&e, a, b)
		if !sameFloat64(got, want) {
			t.Fatalf("DivTo self (%x, %x): %x vs %x", a, b, got, want)
		}
	}
}

func TestFormatOfFP8Narrowing(t *testing.T) {
	// binary64 operands straight into FP8: exhaustive over FP8-valued
	// operands must match FP8's own arithmetic when inputs are exact
	// FP8 values (operations on exact values round once either way).
	var e Env
	for a := uint64(0); a < 1<<8; a++ {
		if fp8.IsNaN(a) {
			continue
		}
		for b := uint64(0); b < 1<<8; b++ {
			if fp8.IsNaN(b) {
				continue
			}
			wa := fp8.Convert(&e, Binary64, a)
			wb := fp8.Convert(&e, Binary64, b)
			got := Binary64.AddTo(&e, fp8, wa, wb)
			want := fp8.Add(&e, a, b)
			if got != want && !(fp8.IsNaN(got) && fp8.IsNaN(want)) {
				t.Fatalf("AddTo fp8 (%v, %v): %#02x vs %#02x",
					fp8.ToFloat64(a), fp8.ToFloat64(b), got, want)
			}
		}
	}
}
