package ieee754

import "math/bits"

// Bfloat16 is the "brain floating point" format used by ML hardware:
// the binary32 exponent range with only 8 bits of significand. The
// paper's introduction motivates the study with exactly this trend —
// reduced-precision formats spreading with machine learning.
var Bfloat16 = Format{ExpBits: 8, FracBits: 7, Name: "bfloat16"}

// NextUp returns the least value that compares greater than x
// (IEEE 754-2008 nextUp). nextUp(-0) = nextUp(+0) = minSubnormal,
// nextUp(+inf) = +inf, nextUp(NaN) = quieted NaN.
func (f Format) NextUp(x uint64) uint64 {
	switch {
	case f.IsNaN(x):
		return f.quiet(x)
	case f.IsInf(x, +1):
		return x
	case f.IsZero(x):
		return f.MinSubnormal()
	case f.SignBit(x):
		// Negative values move toward zero: decrement magnitude.
		return f.pack(true, 0, 0) | (x&^f.signMask() - 1)
	default:
		return x + 1 // encoding order matches value order for positives
	}
}

// NextDown returns the greatest value that compares less than x
// (IEEE 754-2008 nextDown): nextDown(x) = -nextUp(-x).
func (f Format) NextDown(x uint64) uint64 {
	return f.Neg(f.NextUp(f.Neg(x)))
}

// ScaleB returns x * 2^k with a single rounding (IEEE scaleB).
// Overflow and underflow behave as for multiplication.
func (f Format) ScaleB(e *Env, x uint64, k int) uint64 {
	e.begin()
	r := f.scaleB(e, x, k)
	return e.finish("scaleb", f, 2, x, uint64(int64(k)), 0, r)
}

func (f Format) scaleB(e *Env, x uint64, k int) uint64 {
	if f.IsNaN(x) {
		return f.propagateNaN(e, x, x)
	}
	x = e.daz(f, x)
	if f.IsInf(x, 0) || f.IsZero(x) || k == 0 {
		return x
	}
	u := f.unpackFinite(x)
	// Clamp k so exponent arithmetic cannot overflow int.
	if k > 1<<20 {
		k = 1 << 20
	}
	if k < -(1 << 20) {
		k = -(1 << 20)
	}
	return f.roundPack(e, u.sign, u.exp+k, u.sig, false)
}

// LogB returns the exponent of x as an integer: floor(log2(|x|)), per
// IEEE logB. logB(0) raises divide-by-zero conceptually; here it
// returns the most negative int and raises the flag. logB(inf) returns
// MaxInt, logB(NaN) raises invalid.
func (f Format) LogB(e *Env, x uint64) int {
	e.begin()
	var r int
	switch {
	case f.IsNaN(x):
		e.raise(FlagInvalid)
		r = -1 << 62
	case f.IsInf(x, 0):
		r = 1<<62 - 1
	case f.IsZero(x):
		e.raise(FlagDivByZero)
		r = -1 << 62
	default:
		x = e.daz(f, x)
		if f.IsZero(x) {
			e.raise(FlagDivByZero)
			r = -1 << 62
		} else {
			u := f.unpackFinite(x)
			r = u.exp
		}
	}
	e.finish("logb", f, 1, x, 0, 0, uint64(int64(r)))
	return r
}

// Ulp returns the magnitude of one unit in the last place of x: the gap
// between |x| and the next representable magnitude. For zeros and
// subnormals it is the minimum subnormal; for infinities and NaN it
// returns a NaN.
func (f Format) Ulp(x uint64) uint64 {
	if !f.IsFinite(x) {
		return f.QNaN()
	}
	if f.IsZero(x) || f.IsSubnormal(x) {
		return f.MinSubnormal()
	}
	u := f.unpackFinite(x)
	// ulp = 2^(exp - FracBits).
	e := u.exp - int(f.FracBits)
	if e < f.Emin()-int(f.FracBits) {
		return f.MinSubnormal()
	}
	if e >= f.Emin() {
		return f.pack(false, uint64(e+f.Bias()), 0)
	}
	// Subnormal ulp: 2^e with e below Emin.
	shift := uint(f.Emin() - e)
	return f.MinNormal() >> shift
}

// TrapError reports a floating point exception delivered as a trap: the
// model of running with unmasked exceptions (feenableexcept/SIGFPE),
// the behaviour the paper's Exception Signal question asks about. It is
// returned by TrappingOp wrappers, never by the default-environment
// entry points — by default IEEE exceptions only set sticky flags.
type TrapError struct {
	Op     string
	Raised Flags
	Result uint64
}

// Error renders the trap like a runtime diagnostic.
func (t *TrapError) Error() string {
	return "floating point exception: " + t.Raised.String() + " in " + t.Op
}

// TrapMask on an Env selects which exceptions cause the Trapping*
// wrappers to return a TrapError. The default (zero) mask never traps —
// matching real hardware defaults, and the correct answer to the
// Exception Signal question.

// AddT is Add with trap delivery per mask: if the operation raises any
// flag in mask, the result is still computed (non-stop semantics are
// suspended) and a TrapError describes the exception.
func (f Format) AddT(e *Env, mask Flags, a, b uint64) (uint64, error) {
	return f.trapWrap(e, mask, f.Add(e, a, b), "add")
}

// SubT is Sub with trap delivery per mask.
func (f Format) SubT(e *Env, mask Flags, a, b uint64) (uint64, error) {
	return f.trapWrap(e, mask, f.Sub(e, a, b), "sub")
}

// MulT is Mul with trap delivery per mask.
func (f Format) MulT(e *Env, mask Flags, a, b uint64) (uint64, error) {
	return f.trapWrap(e, mask, f.Mul(e, a, b), "mul")
}

// DivT is Div with trap delivery per mask.
func (f Format) DivT(e *Env, mask Flags, a, b uint64) (uint64, error) {
	return f.trapWrap(e, mask, f.Div(e, a, b), "div")
}

// SqrtT is Sqrt with trap delivery per mask.
func (f Format) SqrtT(e *Env, mask Flags, a uint64) (uint64, error) {
	return f.trapWrap(e, mask, f.Sqrt(e, a), "sqrt")
}

func (f Format) trapWrap(e *Env, mask Flags, result uint64, op string) (uint64, error) {
	if raised := e.LastRaised & mask; raised != 0 {
		return result, &TrapError{Op: op, Raised: raised, Result: result}
	}
	return result, nil
}

// DecomposeInt splits a finite x into integer significand and base-2
// exponent such that x = (-1)^sign * sig * 2^exp exactly, with sig
// having no trailing zero bits (sig == 0 only for zeros).
func (f Format) DecomposeInt(x uint64) (sign bool, sig uint64, exp int) {
	sign = f.SignBit(x)
	if !f.IsFinite(x) || f.IsZero(x) {
		return sign, 0, 0
	}
	u := f.unpackFinite(x)
	tz := bits.TrailingZeros64(u.sig)
	sig = u.sig >> uint(tz)
	exp = u.exp - (63 - tz)
	return sign, sig, exp
}
