package ieee754

import (
	"sync"
	"testing"
)

func TestCloneCopiesModesNotObserver(t *testing.T) {
	base := &Env{Rounding: TowardNegative, FTZ: true, DAZ: true}
	base.Observer = func(OpEvent) { t.Fatal("observer leaked into clone") }
	base.Flags = FlagInexact

	c := base.Clone()
	if c.Rounding != TowardNegative || !c.FTZ || !c.DAZ {
		t.Fatalf("mode controls not carried over: %+v", c)
	}
	if c.Flags != FlagInexact {
		t.Fatalf("sticky flags not carried over: %v", c.Flags)
	}
	if c.Observer != nil {
		t.Fatal("Observer must be dropped by Clone")
	}

	// Mutating the clone must not touch the original.
	f := Binary64
	var scratch Env
	one := f.FromFloat64(&scratch, 1)
	zero := f.FromFloat64(&scratch, 0)
	f.Div(c, one, zero)
	if !c.TestFlags(FlagDivByZero) {
		t.Fatal("clone did not record its own flags")
	}
	if base.TestFlags(FlagDivByZero) {
		t.Fatal("clone operation leaked flags into the original Env")
	}
}

// TestCloneRace hammers cloned Envs from 8 goroutines. Under -race this
// verifies the one-Env-per-goroutine pattern: a shared template Env is
// cloned once per worker and each clone is then mutated freely with no
// shared state. Every goroutine runs the identical op sequence, so the
// results must agree bit for bit.
func TestCloneRace(t *testing.T) {
	template := &Env{Rounding: NearestEven}
	f := Binary64

	run := func(e *Env) (sum uint64, flags Flags) {
		x := f.FromFloat64(e, 1.0)
		tiny := f.FromFloat64(e, 5e-324)
		shrink := f.FromFloat64(e, 0.999999)
		third := f.Div(e, f.FromFloat64(e, 1), f.FromFloat64(e, 3))
		for i := 0; i < 5000; i++ {
			x = f.Add(e, x, third)
			x = f.Mul(e, x, shrink)
			x = f.FMA(e, x, third, tiny)
			if i%97 == 0 {
				x = f.Sqrt(e, x)
			}
		}
		return x, e.Flags
	}

	const workers = 8
	sums := make([]uint64, workers)
	flags := make([]Flags, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sums[w], flags[w] = run(template.Clone())
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if sums[w] != sums[0] {
			t.Fatalf("goroutine %d result %#x != goroutine 0 result %#x", w, sums[w], sums[0])
		}
		if flags[w] != flags[0] {
			t.Fatalf("goroutine %d flags %v != goroutine 0 flags %v", w, flags[w], flags[0])
		}
	}
	if template.Flags != 0 || template.LastRaised != 0 {
		t.Fatalf("workers leaked state into the template: flags=%v last=%v",
			template.Flags, template.LastRaised)
	}
}
