package ieee754

// Ordering is the result of a floating point comparison. Unlike integer
// comparison, floating point comparison is a four-way relation: two
// values are either less, equal, greater, or unordered (at least one is
// a NaN).
type Ordering int8

const (
	Less      Ordering = -1
	Equal     Ordering = 0
	Greater   Ordering = 1
	Unordered Ordering = 2
)

// String returns the relation name.
func (o Ordering) String() string {
	switch o {
	case Less:
		return "less"
	case Equal:
		return "equal"
	case Greater:
		return "greater"
	case Unordered:
		return "unordered"
	}
	return "invalidOrdering"
}

// CompareQuiet compares a and b without raising invalid for quiet NaNs
// (IEEE compareQuiet*). Signaling NaNs still raise invalid. Zeros of
// either sign compare equal.
func (f Format) CompareQuiet(e *Env, a, b uint64) Ordering {
	e.begin()
	if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
		e.raise(FlagInvalid)
	}
	o := f.compare(a, b)
	e.finish("cmp", f, 2, a, b, 0, uint64(int64(o)))
	return o
}

// CompareSignaling compares a and b, raising invalid if either operand
// is any NaN (IEEE compareSignaling*, the semantics of <, <=, >, >= in
// C-family languages).
func (f Format) CompareSignaling(e *Env, a, b uint64) Ordering {
	e.begin()
	if f.IsNaN(a) || f.IsNaN(b) {
		e.raise(FlagInvalid)
	}
	o := f.compare(a, b)
	e.finish("cmp", f, 2, a, b, 0, uint64(int64(o)))
	return o
}

// compare is the flag-free comparison core.
func (f Format) compare(a, b uint64) Ordering {
	if f.IsNaN(a) || f.IsNaN(b) {
		return Unordered
	}
	aZero, bZero := f.IsZero(a), f.IsZero(b)
	if aZero && bZero {
		return Equal // +0 == -0
	}
	ka, kb := f.orderKey(a), f.orderKey(b)
	switch {
	case ka < kb:
		return Less
	case ka > kb:
		return Greater
	}
	return Equal
}

// orderKey maps a non-NaN encoding to a signed integer whose natural
// order matches the floating point order (the classic sign-magnitude to
// two's-complement trick).
func (f Format) orderKey(x uint64) int64 {
	m := x & f.mask()
	if f.SignBit(x) {
		return -int64(m &^ f.signMask())
	}
	return int64(m)
}

// Eq reports a == b with IEEE semantics: NaN compares unequal to
// everything including itself, and +0 equals -0. Quiet NaNs do not raise
// invalid (this is C's ==).
func (f Format) Eq(e *Env, a, b uint64) bool {
	return f.CompareQuiet(e, a, b) == Equal
}

// Ne reports a != b with IEEE semantics (true whenever the operands are
// unordered).
func (f Format) Ne(e *Env, a, b uint64) bool {
	return f.CompareQuiet(e, a, b) != Equal
}

// Lt reports a < b, raising invalid on any NaN operand (C's <).
func (f Format) Lt(e *Env, a, b uint64) bool {
	return f.CompareSignaling(e, a, b) == Less
}

// Le reports a <= b, raising invalid on any NaN operand.
func (f Format) Le(e *Env, a, b uint64) bool {
	o := f.CompareSignaling(e, a, b)
	return o == Less || o == Equal
}

// Gt reports a > b, raising invalid on any NaN operand.
func (f Format) Gt(e *Env, a, b uint64) bool {
	return f.CompareSignaling(e, a, b) == Greater
}

// Ge reports a >= b, raising invalid on any NaN operand.
func (f Format) Ge(e *Env, a, b uint64) bool {
	o := f.CompareSignaling(e, a, b)
	return o == Greater || o == Equal
}

// TotalOrder implements the IEEE 754-2008 totalOrder predicate: a total
// ordering over all encodings in which -NaN < -Inf < finite < +Inf <
// +NaN, -0 < +0, and NaNs order by payload. It raises no flags.
func (f Format) TotalOrder(a, b uint64) bool {
	ka := f.totalKey(a)
	kb := f.totalKey(b)
	return ka <= kb
}

// totalKey maps any encoding (including NaNs) to a monotone signed key.
// Negative encodings are offset by one so that -0 orders strictly below
// +0, as totalOrder requires.
func (f Format) totalKey(x uint64) int64 {
	m := x & f.mask()
	if f.SignBit(x) {
		return -int64(m&^f.signMask()) - 1
	}
	return int64(m)
}

// MinNum returns the smaller of a and b, preferring a number over a
// quiet NaN (IEEE 754-2008 minNum). If both are NaN the default NaN is
// returned. Signaling NaNs raise invalid.
func (f Format) MinNum(e *Env, a, b uint64) uint64 {
	return f.minMax(e, a, b, true)
}

// MaxNum returns the larger of a and b, preferring a number over a quiet
// NaN (IEEE 754-2008 maxNum).
func (f Format) MaxNum(e *Env, a, b uint64) uint64 {
	return f.minMax(e, a, b, false)
}

func (f Format) minMax(e *Env, a, b uint64, min bool) uint64 {
	e.begin()
	op := "maxnum"
	if min {
		op = "minnum"
	}
	var r uint64
	aNaN, bNaN := f.IsNaN(a), f.IsNaN(b)
	if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
		e.raise(FlagInvalid)
	}
	switch {
	case aNaN && bNaN:
		r = f.QNaN()
	case aNaN:
		r = b
	case bNaN:
		r = a
	default:
		o := f.compare(a, b)
		// Order zeros by sign: minNum(-0,+0) = -0, maxNum = +0.
		if o == Equal && f.IsZero(a) && f.IsZero(b) && f.SignBit(a) != f.SignBit(b) {
			if min == f.SignBit(a) {
				r = a
			} else {
				r = b
			}
		} else if (o == Less) == min || o == Equal {
			r = a
		} else {
			r = b
		}
	}
	return e.finish(op, f, 2, a, b, 0, r)
}
