package ieee754

import (
	"math"
	"testing"
)

// Directed tests for exception flags, rounding modes, and the
// non-standard FTZ/DAZ controls — semantics Go's hardware floats can't
// expose, so they are checked against the standard's requirements.

func TestDivByZeroFlag(t *testing.T) {
	var e Env
	r := Binary64.Div(&e, b64(1), b64(0))
	if !Binary64.IsInf(r, +1) {
		t.Fatalf("1/0 = %v, want +Inf", f64(r))
	}
	if e.LastRaised != FlagDivByZero {
		t.Fatalf("1/0 raised %v, want divbyzero", e.LastRaised)
	}
	r = Binary64.Div(&e, b64(-1), b64(0))
	if !Binary64.IsInf(r, -1) {
		t.Fatalf("-1/0 = %v, want -Inf", f64(r))
	}
	r = Binary64.Div(&e, b64(1), Binary64.Zero(true))
	if !Binary64.IsInf(r, -1) {
		t.Fatalf("1/-0 = %v, want -Inf", f64(r))
	}
}

func TestZeroDivZeroInvalid(t *testing.T) {
	var e Env
	r := Binary64.Div(&e, b64(0), b64(0))
	if !Binary64.IsNaN(r) {
		t.Fatalf("0/0 = %v, want NaN", f64(r))
	}
	if e.LastRaised != FlagInvalid {
		t.Fatalf("0/0 raised %v, want invalid", e.LastRaised)
	}
}

func TestInvalidOperations(t *testing.T) {
	var e Env
	cases := []struct {
		name string
		run  func() uint64
	}{
		{"inf-inf", func() uint64 { return Binary64.Sub(&e, Binary64.Inf(false), Binary64.Inf(false)) }},
		{"inf+(-inf)", func() uint64 { return Binary64.Add(&e, Binary64.Inf(false), Binary64.Inf(true)) }},
		{"0*inf", func() uint64 { return Binary64.Mul(&e, b64(0), Binary64.Inf(false)) }},
		{"inf/inf", func() uint64 { return Binary64.Div(&e, Binary64.Inf(false), Binary64.Inf(true)) }},
		{"sqrt(-1)", func() uint64 { return Binary64.Sqrt(&e, b64(-1)) }},
		{"rem(inf,1)", func() uint64 { return Binary64.Rem(&e, Binary64.Inf(false), b64(1)) }},
		{"rem(1,0)", func() uint64 { return Binary64.Rem(&e, b64(1), b64(0)) }},
		{"fma(0,inf,1)", func() uint64 { return Binary64.FMA(&e, b64(0), Binary64.Inf(false), b64(1)) }},
		{"fma(inf,1,-inf)", func() uint64 { return Binary64.FMA(&e, Binary64.Inf(false), b64(1), Binary64.Inf(true)) }},
	}
	for _, c := range cases {
		r := c.run()
		if !Binary64.IsNaN(r) {
			t.Errorf("%s = %v, want NaN", c.name, f64(r))
		}
		if !e.LastRaised.Has(FlagInvalid) {
			t.Errorf("%s raised %v, want invalid", c.name, e.LastRaised)
		}
	}
}

func TestOverflowSaturation(t *testing.T) {
	max := Binary64.MaxFinite(false)
	// Round-to-nearest overflow gives infinity.
	var e Env
	r := Binary64.Mul(&e, max, b64(2))
	if !Binary64.IsInf(r, +1) {
		t.Fatalf("max*2 (RNE) = %v, want +Inf", f64(r))
	}
	if !e.LastRaised.Has(FlagOverflow | FlagInexact) {
		t.Fatalf("max*2 raised %v, want overflow|inexact", e.LastRaised)
	}
	// Toward zero clamps at the max finite value.
	e = Env{Rounding: TowardZero}
	r = Binary64.Mul(&e, max, b64(2))
	if r != max {
		t.Fatalf("max*2 (RTZ) = %x, want maxFinite %x", r, max)
	}
	// Toward negative: +overflow clamps, -overflow goes to -Inf.
	e = Env{Rounding: TowardNegative}
	if r = Binary64.Mul(&e, max, b64(2)); r != max {
		t.Fatalf("max*2 (RD) = %x, want maxFinite", r)
	}
	if r = Binary64.Mul(&e, Binary64.MaxFinite(true), b64(2)); !Binary64.IsInf(r, -1) {
		t.Fatalf("-max*2 (RD) = %v, want -Inf", f64(r))
	}
	// Toward positive: mirror.
	e = Env{Rounding: TowardPositive}
	if r = Binary64.Mul(&e, max, b64(2)); !Binary64.IsInf(r, +1) {
		t.Fatalf("max*2 (RU) = %v, want +Inf", f64(r))
	}
	if r = Binary64.Mul(&e, Binary64.MaxFinite(true), b64(2)); r != Binary64.MaxFinite(true) {
		t.Fatalf("-max*2 (RU) = %x, want -maxFinite", r)
	}
}

func TestSaturationAtInfinity(t *testing.T) {
	// Floating point arithmetic saturates: inf + 1 == inf, and there
	// is no way to "back off" from infinity by subtracting.
	var e Env
	inf := Binary64.Inf(false)
	if r := Binary64.Add(&e, inf, b64(1)); r != inf {
		t.Fatalf("inf+1 = %v", f64(r))
	}
	if r := Binary64.Sub(&e, inf, b64(1)); r != inf {
		t.Fatalf("inf-1 = %v", f64(r))
	}
	// Also true for large finite values: adding 1 is absorbed.
	big := b64(1e30)
	if r := Binary64.Add(&e, big, b64(1)); r != big {
		t.Fatalf("1e30+1 = %v, want absorption", f64(r))
	}
	if !e.LastRaised.Has(FlagInexact) {
		t.Fatalf("absorption raised %v, want inexact", e.LastRaised)
	}
}

func TestUnderflowAndDenormalFlags(t *testing.T) {
	var e Env
	// minSubnormal / 2 rounds to zero: underflow|inexact.
	r := Binary64.Div(&e, Binary64.MinSubnormal(), b64(2))
	if r != 0 {
		t.Fatalf("minSub/2 = %x, want +0", r)
	}
	if !e.LastRaised.Has(FlagUnderflow|FlagInexact) || e.LastRaised.Has(FlagOverflow) {
		t.Fatalf("minSub/2 raised %v", e.LastRaised)
	}
	// minNormal / 2 is an exact subnormal: denormal flag, no underflow
	// under the exactness rule (underflow requires inexact).
	e = Env{}
	r = Binary64.Div(&e, Binary64.MinNormal(), b64(2))
	if !Binary64.IsSubnormal(r) {
		t.Fatalf("minNormal/2 = %x, want subnormal", r)
	}
	if e.LastRaised.Has(FlagUnderflow) || e.LastRaised.Has(FlagInexact) {
		t.Fatalf("exact subnormal raised %v", e.LastRaised)
	}
	if !e.LastRaised.Has(FlagDenormal) {
		t.Fatalf("subnormal result raised %v, want denormal", e.LastRaised)
	}
	// Subnormal operand raises the denormal-operand flag.
	e = Env{}
	Binary64.Add(&e, Binary64.MinSubnormal(), b64(1))
	if !e.LastRaised.Has(FlagDenormal) {
		t.Fatalf("subnormal operand raised %v, want denormal", e.LastRaised)
	}
}

func TestStickyFlags(t *testing.T) {
	var e Env
	Binary64.Div(&e, b64(1), b64(3)) // inexact
	Binary64.Div(&e, b64(1), b64(0)) // divbyzero
	want := FlagInexact | FlagDivByZero
	if e.Flags != want {
		t.Fatalf("sticky flags %v, want %v", e.Flags, want)
	}
	e.ClearFlags()
	if e.Flags != 0 {
		t.Fatalf("flags after clear: %v", e.Flags)
	}
}

func TestFTZ(t *testing.T) {
	// FTZ flushes subnormal results to zero.
	e := Env{FTZ: true}
	r := Binary64.Div(&e, Binary64.MinNormal(), b64(2))
	if r != 0 {
		t.Fatalf("FTZ minNormal/2 = %x, want +0", r)
	}
	if !e.LastRaised.Has(FlagUnderflow) {
		t.Fatalf("FTZ flush raised %v, want underflow", e.LastRaised)
	}
	// Without FTZ the same operation yields a subnormal: a concrete
	// witness that FTZ is a non-standard behaviour change.
	var std Env
	r2 := Binary64.Div(&std, Binary64.MinNormal(), b64(2))
	if r2 == 0 || !Binary64.IsSubnormal(r2) {
		t.Fatalf("IEEE minNormal/2 = %x, want subnormal", r2)
	}
	if r == r2 {
		t.Fatal("FTZ did not change the result")
	}
}

func TestDAZ(t *testing.T) {
	sub := Binary64.MinSubnormal()
	// DAZ treats subnormal inputs as zero: sub - sub stays 0 either
	// way, but sub + sub differs, and 1e-310 * 1e10 differs wildly.
	e := Env{DAZ: true}
	if r := Binary64.Add(&e, sub, sub); r != 0 {
		t.Fatalf("DAZ sub+sub = %x, want 0", r)
	}
	var std Env
	if r := Binary64.Add(&std, sub, sub); r == 0 {
		t.Fatal("IEEE sub+sub = 0, want 2*minSub")
	}
	// A subnormal scaled back into the normal range: DAZ destroys it.
	x := b64(1e-310)
	y := b64(1e10)
	e = Env{DAZ: true}
	rd := Binary64.Mul(&e, x, y)
	std = Env{}
	rs := Binary64.Mul(&std, x, y)
	if rd != 0 {
		t.Fatalf("DAZ 1e-310*1e10 = %v, want 0", f64(rd))
	}
	if f64(rs) == 0 {
		t.Fatal("IEEE 1e-310*1e10 = 0, want ~1e-300")
	}
}

func TestRoundingModeDirections(t *testing.T) {
	// 1/3 is inexact; the five modes must order correctly.
	res := map[RoundingMode]uint64{}
	for _, m := range []RoundingMode{NearestEven, NearestAway, TowardZero, TowardPositive, TowardNegative} {
		e := Env{Rounding: m}
		res[m] = Binary64.Div(&e, b64(1), b64(3))
	}
	if !(f64(res[TowardNegative]) < f64(res[TowardPositive])) {
		t.Fatalf("RD %v !< RU %v", f64(res[TowardNegative]), f64(res[TowardPositive]))
	}
	if res[TowardZero] != res[TowardNegative] {
		t.Fatalf("RTZ of positive should equal RD")
	}
	if res[TowardPositive]-res[TowardNegative] != 1 {
		t.Fatalf("RU and RD should be 1 ulp apart, got %x vs %x",
			res[TowardPositive], res[TowardNegative])
	}
	// Negative operand: RTZ == RU.
	e := Env{Rounding: TowardZero}
	rtz := Binary64.Div(&e, b64(-1), b64(3))
	e = Env{Rounding: TowardPositive}
	ru := Binary64.Div(&e, b64(-1), b64(3))
	if rtz != ru {
		t.Fatalf("RTZ(-1/3) %x != RU(-1/3) %x", rtz, ru)
	}
}

func TestTiesToEvenVsAway(t *testing.T) {
	// 1 + 2^-53 is exactly halfway between 1 and 1+2^-52.
	one := b64(1)
	half := b64(math.Ldexp(1, -53))
	e := Env{Rounding: NearestEven}
	if r := Binary64.Add(&e, one, half); r != one {
		t.Fatalf("RNE tie: got %x, want 1.0 (even)", r)
	}
	e = Env{Rounding: NearestAway}
	if r := Binary64.Add(&e, one, half); r != one+1 {
		t.Fatalf("RNA tie: got %x, want next after 1.0", r)
	}
}

func TestSignedZeroRules(t *testing.T) {
	var e Env
	nz := Binary64.Zero(true)
	pz := Binary64.Zero(false)
	// (+0) + (-0) = +0 in all modes except toward-negative.
	if r := Binary64.Add(&e, pz, nz); r != pz {
		t.Fatalf("+0 + -0 = %x", r)
	}
	ed := Env{Rounding: TowardNegative}
	if r := Binary64.Add(&ed, pz, nz); r != nz {
		t.Fatalf("+0 + -0 (RD) = %x, want -0", r)
	}
	// x - x = +0 (RNE), -0 (RD).
	if r := Binary64.Sub(&e, b64(1.5), b64(1.5)); r != pz {
		t.Fatalf("x-x = %x, want +0", r)
	}
	if r := Binary64.Sub(&ed, b64(1.5), b64(1.5)); r != nz {
		t.Fatalf("x-x (RD) = %x, want -0", r)
	}
	// -0 * +5 = -0; sqrt(-0) = -0.
	if r := Binary64.Mul(&e, nz, b64(5)); r != nz {
		t.Fatalf("-0*5 = %x, want -0", r)
	}
	if r := Binary64.Sqrt(&e, nz); r != nz {
		t.Fatalf("sqrt(-0) = %x, want -0", r)
	}
	// Yet +0 == -0 when compared.
	if !Binary64.Eq(&e, pz, nz) {
		t.Fatal("+0 != -0")
	}
}

func TestNaNSemantics(t *testing.T) {
	var e Env
	q := Binary64.QNaN()
	// NaN != NaN (the Identity quiz question).
	if Binary64.Eq(&e, q, q) {
		t.Fatal("NaN == NaN")
	}
	// NaN propagates through arithmetic quietly.
	e = Env{}
	r := Binary64.Add(&e, q, b64(1))
	if !Binary64.IsNaN(r) || e.LastRaised.Has(FlagInvalid) {
		t.Fatalf("qNaN+1: r=%x raised=%v", r, e.LastRaised)
	}
	// Signaling NaN raises invalid and is quieted.
	s := Binary64.SNaN()
	r = Binary64.Add(&e, s, b64(1))
	if !Binary64.IsNaN(r) || Binary64.IsSignalingNaN(r) {
		t.Fatalf("sNaN+1 = %x", r)
	}
	if !e.LastRaised.Has(FlagInvalid) {
		t.Fatalf("sNaN+1 raised %v", e.LastRaised)
	}
	// Ordered comparisons with NaN raise invalid; == does not.
	e = Env{}
	Binary64.Lt(&e, q, b64(1))
	if !e.LastRaised.Has(FlagInvalid) {
		t.Fatal("NaN < x did not raise invalid")
	}
	e = Env{}
	Binary64.Eq(&e, q, b64(1))
	if e.LastRaised.Has(FlagInvalid) {
		t.Fatal("NaN == x raised invalid")
	}
}

func TestNaNPayloadPropagation(t *testing.T) {
	var e Env
	// A NaN payload travels through arithmetic (first operand wins).
	n := Binary64.QNaN() | 0x1234
	r := Binary64.Mul(&e, n, b64(2))
	if r != n {
		t.Fatalf("payload lost: %x -> %x", n, r)
	}
	// Payload survives narrowing left-aligned.
	n32 := Binary64.Convert(&e, Binary32, Binary64.QNaN()|0xabc<<40)
	if !Binary32.IsNaN(n32) {
		t.Fatalf("narrowed NaN = %x", n32)
	}
}

func TestFMASingleRounding(t *testing.T) {
	// Witness that FMA(a,b,c) != round(a*b)+c: choose a*b needing
	// more than 53 bits. (1+2^-30)^2 = 1 + 2^-29 + 2^-60.
	var e Env
	a := b64(1 + math.Ldexp(1, -30))
	c := b64(-1)
	fused := Binary64.FMA(&e, a, a, c)
	sep := Binary64.Add(&e, Binary64.Mul(&e, a, a), c)
	if fused == sep {
		t.Fatal("expected FMA to differ from mul+add on witness")
	}
	want := b64(math.Ldexp(1, -29) + math.Ldexp(1, -60))
	if fused != want {
		t.Fatalf("fma = %v, want %v", f64(fused), f64(want))
	}
}

func TestExactOperationsRaiseNothing(t *testing.T) {
	var e Env
	Binary64.Add(&e, b64(1), b64(2))
	Binary64.Mul(&e, b64(3), b64(4))
	Binary64.Div(&e, b64(1), b64(4))
	Binary64.Sqrt(&e, b64(9))
	Binary64.Sub(&e, b64(10), b64(7))
	if e.Flags != 0 {
		t.Fatalf("exact ops raised %v", e.Flags)
	}
}

func TestObserverSeesEveryOp(t *testing.T) {
	var events []OpEvent
	e := Env{Observer: func(ev OpEvent) { events = append(events, ev) }}
	Binary64.Add(&e, b64(1), b64(2))
	Binary64.Div(&e, b64(1), b64(0))
	Binary64.Sqrt(&e, b64(2))
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	if events[0].Op != "add" || events[1].Op != "div" || events[2].Op != "sqrt" {
		t.Fatalf("ops: %v %v %v", events[0].Op, events[1].Op, events[2].Op)
	}
	if events[1].Raised != FlagDivByZero {
		t.Fatalf("div event raised %v", events[1].Raised)
	}
	if !events[2].Raised.Has(FlagInexact) {
		t.Fatalf("sqrt(2) event raised %v", events[2].Raised)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		x uint64
		c Class
	}{
		{b64(1), ClassPosNormal},
		{b64(-1), ClassNegNormal},
		{b64(0), ClassPosZero},
		{Binary64.Zero(true), ClassNegZero},
		{Binary64.Inf(false), ClassPosInf},
		{Binary64.Inf(true), ClassNegInf},
		{Binary64.QNaN(), ClassQuietNaN},
		{Binary64.SNaN(), ClassSignalingNaN},
		{Binary64.MinSubnormal(), ClassPosSubnormal},
		{Binary64.MinSubnormal() | Binary64.signMask(), ClassNegSubnormal},
	}
	for _, c := range cases {
		if got := Binary64.Classify(c.x); got != c.c {
			t.Errorf("classify(%x) = %v, want %v", c.x, got, c.c)
		}
	}
}

func TestFormatConstants(t *testing.T) {
	if Binary64.Bias() != 1023 || Binary32.Bias() != 127 || Binary16.Bias() != 15 {
		t.Fatal("bias wrong")
	}
	if Binary64.Emin() != -1022 || Binary64.Emax() != 1023 {
		t.Fatal("binary64 exponent range wrong")
	}
	if b64(math.MaxFloat64) != Binary64.MaxFinite(false) {
		t.Fatal("MaxFinite mismatch")
	}
	if b64(math.SmallestNonzeroFloat64) != Binary64.MinSubnormal() {
		t.Fatal("MinSubnormal mismatch")
	}
	if b32(math.MaxFloat32) != Binary32.MaxFinite(false) {
		t.Fatal("MaxFinite32 mismatch")
	}
	for _, f := range []Format{Binary16, Binary32, Binary64} {
		if !f.Valid() {
			t.Errorf("%s not valid", f.Name)
		}
	}
}

func TestMinMaxNum(t *testing.T) {
	var e Env
	q := Binary64.QNaN()
	if r := Binary64.MinNum(&e, q, b64(3)); r != b64(3) {
		t.Fatalf("minNum(NaN,3) = %v", f64(r))
	}
	if r := Binary64.MaxNum(&e, b64(2), q); r != b64(2) {
		t.Fatalf("maxNum(2,NaN) = %v", f64(r))
	}
	if r := Binary64.MinNum(&e, Binary64.Zero(true), b64(0)); r != Binary64.Zero(true) {
		t.Fatalf("minNum(-0,+0) = %x", r)
	}
	if r := Binary64.MaxNum(&e, Binary64.Zero(true), b64(0)); r != b64(0) {
		t.Fatalf("maxNum(-0,+0) = %x", r)
	}
	if r := Binary64.MinNum(&e, b64(-5), b64(3)); r != b64(-5) {
		t.Fatalf("minNum(-5,3) = %v", f64(r))
	}
}

func TestTotalOrder(t *testing.T) {
	f := Binary64
	seq := []uint64{
		f.QNaN() | f.signMask(), f.Inf(true), b64(-1), f.Zero(true),
		f.Zero(false), f.MinSubnormal(), b64(1), f.Inf(false), f.QNaN(),
	}
	for i := 0; i < len(seq); i++ {
		for j := i; j < len(seq); j++ {
			if !f.TotalOrder(seq[i], seq[j]) {
				t.Errorf("totalOrder(%x, %x) = false, want true", seq[i], seq[j])
			}
			if i != j && f.TotalOrder(seq[j], seq[i]) {
				t.Errorf("totalOrder(%x, %x) = true, want false", seq[j], seq[i])
			}
		}
	}
}

func TestStringAndHex(t *testing.T) {
	cases := []struct {
		x    uint64
		want string
	}{
		{b64(1.5), "1.5"},
		{b64(-0.1), "-0.1"},
		{Binary64.Inf(false), "+Inf"},
		{Binary64.Inf(true), "-Inf"},
		{Binary64.Zero(true), "-0"},
		{Binary64.QNaN(), "qNaN"},
	}
	for _, c := range cases {
		if got := Binary64.String(c.x); got != c.want {
			t.Errorf("String(%x) = %q, want %q", c.x, got, c.want)
		}
	}
	if got := Binary64.Hex(b64(3)); got != "0x1.8p+1" {
		t.Errorf("Hex(3) = %q", got)
	}
	if got := Binary64.Hex(b64(1)); got != "0x1p+0" {
		t.Errorf("Hex(1) = %q", got)
	}
	if got := Binary64.BitString(b64(1)); got != "0|01111111111|0000000000000000000000000000000000000000000000000000" {
		t.Errorf("BitString(1) = %q", got)
	}
}

func TestParse(t *testing.T) {
	var e Env
	for _, s := range []string{"1.5", "-2", "1e300", "6.1e-5", "inf", "-inf", "nan"} {
		x, err := Binary64.Parse(&e, s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		_ = x
	}
	if _, err := Binary64.Parse(&e, "bogus"); err == nil {
		t.Fatal("parse bogus succeeded")
	}
	x, _ := Binary16.Parse(&e, "65504") // max binary16
	if x != Binary16.MaxFinite(false) {
		t.Fatalf("parse 65504 -> %x, want binary16 max", x)
	}
}

func TestNumWrapper(t *testing.T) {
	var e Env
	a := N(Binary64, 1.5)
	b := N(Binary64, 2.5)
	if got := a.Add(&e, b).Float64(); got != 4 {
		t.Fatalf("1.5+2.5 = %v", got)
	}
	if got := a.Mul(&e, b).Float64(); got != 3.75 {
		t.Fatalf("1.5*2.5 = %v", got)
	}
	if !a.Lt(&e, b) || a.Eq(&e, b) {
		t.Fatal("compare wrong")
	}
	if a.Neg().Float64() != -1.5 || a.Neg().Abs().Float64() != 1.5 {
		t.Fatal("neg/abs wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("format mismatch did not panic")
		}
	}()
	a.Add(&e, N(Binary32, 1))
}
