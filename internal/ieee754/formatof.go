package ieee754

import "math/bits"

// div64x63 computes floor(sigA * 2^63 / sigB) with remainder, for
// bit-63-normalized significands (the core of Div).
func div64x63(sigA, sigB uint64) (q, rem uint64) {
	return bits.Div64(sigA>>1, sigA<<63, sigB)
}

// formatOf operations (IEEE 754-2008 §5.4): take operands in format f
// but deliver the result in format dst with a SINGLE rounding from the
// exact value. This differs from computing in f and then converting —
// that path rounds twice and can misround (the double-rounding hazard
// that makes x87 extended-precision arithmetic notorious).
//
// The implementations reuse the exact intermediate forms of the normal
// operations and simply round-and-pack into dst.

// AddTo returns a + b (operands in f) rounded once into dst.
func (f Format) AddTo(e *Env, dst Format, a, b uint64) uint64 {
	e.begin()
	r := f.addSubTo(e, dst, a, b, false)
	return e.finish("add", dst, 2, a, b, 0, r)
}

// SubTo returns a - b (operands in f) rounded once into dst.
func (f Format) SubTo(e *Env, dst Format, a, b uint64) uint64 {
	e.begin()
	r := f.addSubTo(e, dst, a, b, true)
	return e.finish("sub", dst, 2, a, b, 0, r)
}

func (f Format) addSubTo(e *Env, dst Format, a, b uint64, negate bool) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		// Propagate through dst's canonical quiet NaN (payload
		// conversion as in Convert).
		if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
			e.raise(FlagInvalid)
		}
		return dst.QNaN()
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	sa := f.SignBit(a)
	sb := f.SignBit(b) != negate

	aInf, bInf := f.IsInf(a, 0), f.IsInf(b, 0)
	switch {
	case aInf && bInf:
		if sa != sb {
			e.raise(FlagInvalid)
			return dst.QNaN()
		}
		return dst.Inf(sa)
	case aInf:
		return dst.Inf(sa)
	case bInf:
		return dst.Inf(sb)
	}
	aZero, bZero := f.IsZero(a), f.IsZero(b)
	switch {
	case aZero && bZero:
		if sa == sb {
			return dst.Zero(sa)
		}
		return dst.Zero(e.Rounding == TowardNegative)
	case aZero:
		return f.convertFiniteTo(e, dst, f.withSign(b, sb))
	case bZero:
		return f.convertFiniteTo(e, dst, f.withSign(a, sa))
	}

	ua := f.unpackFinite(f.withSign(a, sa))
	ub := f.unpackFinite(f.withSign(b, sb))
	if ua.sign == ub.sign {
		// Same-magnitude addition: mirror addMags but pack into dst.
		x, y := ua, ub
		if x.exp < y.exp || (x.exp == y.exp && x.sig < y.sig) {
			x, y = y, x
		}
		d := uint(x.exp - y.exp)
		sigB := shiftRightJam(y.sig, d)
		sum := x.sig + sigB
		exp := x.exp
		if sum < x.sig {
			sum = sum>>1 | sum&1 | 1<<63
			exp++
		}
		return dst.roundPack(e, x.sign, exp, sum, false)
	}
	// Opposite signs: mirror subMags.
	x, y := ua, ub
	if x.exp < y.exp || (x.exp == y.exp && x.sig < y.sig) {
		x, y = y, x
		x.sign = !y.sign
	}
	if x.exp == y.exp && x.sig == y.sig {
		return dst.Zero(e.Rounding == TowardNegative)
	}
	d := uint(x.exp - y.exp)
	av := uint128{x.sig, 0}
	bv := uint128{y.sig, 0}
	sticky := false
	if d >= 128 {
		bv = uint128{}
		if y.sig != 0 {
			sticky = true
		}
	} else {
		if bv.shrLoses(d) {
			sticky = true
		}
		bv = bv.shr(d)
	}
	diff := av.sub(bv)
	if sticky {
		diff = diff.sub(uint128{0, 1})
	}
	return dst.roundPack128(e, x.sign, x.exp, diff, sticky)
}

// MulTo returns a * b (operands in f) rounded once into dst.
func (f Format) MulTo(e *Env, dst Format, a, b uint64) uint64 {
	e.begin()
	var r uint64
	switch {
	case f.IsNaN(a) || f.IsNaN(b):
		if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
			e.raise(FlagInvalid)
		}
		r = dst.QNaN()
	default:
		a2, b2 := e.daz(f, a), e.daz(f, b)
		sign := f.SignBit(a2) != f.SignBit(b2)
		aInf, bInf := f.IsInf(a2, 0), f.IsInf(b2, 0)
		aZero, bZero := f.IsZero(a2), f.IsZero(b2)
		switch {
		case (aInf && bZero) || (bInf && aZero):
			e.raise(FlagInvalid)
			r = dst.QNaN()
		case aInf || bInf:
			r = dst.Inf(sign)
		case aZero || bZero:
			r = dst.Zero(sign)
		default:
			ua, ub := f.unpackFinite(a2), f.unpackFinite(b2)
			p := mul64(ua.sig, ub.sig)
			exp := ua.exp + ub.exp
			if p.hi&(1<<63) != 0 {
				exp++
			} else {
				p = p.shl(1)
			}
			r = dst.roundPack128(e, sign, exp, p, false)
		}
	}
	return e.finish("mul", dst, 2, a, b, 0, r)
}

// DivTo returns a / b (operands in f) rounded once into dst.
func (f Format) DivTo(e *Env, dst Format, a, b uint64) uint64 {
	e.begin()
	var r uint64
	switch {
	case f.IsNaN(a) || f.IsNaN(b):
		if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) {
			e.raise(FlagInvalid)
		}
		r = dst.QNaN()
	default:
		a2, b2 := e.daz(f, a), e.daz(f, b)
		sign := f.SignBit(a2) != f.SignBit(b2)
		aInf, bInf := f.IsInf(a2, 0), f.IsInf(b2, 0)
		aZero, bZero := f.IsZero(a2), f.IsZero(b2)
		switch {
		case (aInf && bInf) || (aZero && bZero):
			e.raise(FlagInvalid)
			r = dst.QNaN()
		case aInf:
			r = dst.Inf(sign)
		case bInf:
			r = dst.Zero(sign)
		case bZero:
			e.raise(FlagDivByZero)
			r = dst.Inf(sign)
		case aZero:
			r = dst.Zero(sign)
		default:
			ua, ub := f.unpackFinite(a2), f.unpackFinite(b2)
			q, rem := div64x63(ua.sig, ub.sig)
			sticky := rem != 0
			exp := ua.exp - ub.exp
			if q&(1<<63) == 0 {
				q <<= 1
				exp--
			}
			r = dst.roundPack(e, sign, exp, q, sticky)
		}
	}
	return e.finish("div", dst, 2, a, b, 0, r)
}

// convertFiniteTo converts a finite (possibly zero) value exactly into
// dst with rounding handled by roundPack.
func (f Format) convertFiniteTo(e *Env, dst Format, x uint64) uint64 {
	if f.IsZero(x) {
		return dst.Zero(f.SignBit(x))
	}
	u := f.unpackFinite(x)
	return dst.roundPack(e, u.sign, u.exp, u.sig, false)
}
