package ieee754

// Property-based tests (testing/quick) for the algebraic invariants the
// survey's core quiz is about. These are the machine-checked versions of
// the quiz facts: what floating point does and does not guarantee.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickCfg generates operands across all regimes.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 20000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randBits64(rng))
			}
		},
	}
}

func TestPropAddCommutative(t *testing.T) {
	var e Env
	prop := func(a, b uint64) bool {
		x := Binary64.Add(&e, a, b)
		y := Binary64.Add(&e, b, a)
		return sameFloat64(x, y)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulCommutative(t *testing.T) {
	var e Env
	prop := func(a, b uint64) bool {
		return sameFloat64(Binary64.Mul(&e, a, b), Binary64.Mul(&e, b, a))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropSquareNonNegative(t *testing.T) {
	// For any non-NaN x, x*x is never negative (it may be +Inf).
	var e Env
	prop := func(a uint64) bool {
		if Binary64.IsNaN(a) {
			return true
		}
		sq := Binary64.Mul(&e, a, a)
		return !Binary64.SignBit(sq) || Binary64.IsZero(sq)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddNotAssociative(t *testing.T) {
	// Associativity FAILS in floating point; find witnesses to prove
	// the quiz's ground truth, then verify a canonical witness.
	var e Env
	one := b64(1)
	tiny := b64(math.Ldexp(1, -53))
	l := Binary64.Add(&e, Binary64.Add(&e, one, tiny), tiny) // (1+t)+t = 1
	r := Binary64.Add(&e, one, Binary64.Add(&e, tiny, tiny)) // 1+(t+t) > 1
	if sameFloat64(l, r) {
		t.Fatal("expected associativity violation witness")
	}
	// And count how often it fails on random triples: must be nonzero.
	rng := newRng(t)
	viol := 0
	total := 0
	for i := 0; i < 20000; i++ {
		a, b, c := randBits64(rng), randBits64(rng), randBits64(rng)
		if Binary64.IsNaN(a) || Binary64.IsNaN(b) || Binary64.IsNaN(c) {
			continue
		}
		total++
		l := Binary64.Add(&e, Binary64.Add(&e, a, b), c)
		r := Binary64.Add(&e, a, Binary64.Add(&e, b, c))
		if !sameFloat64(l, r) {
			viol++
		}
	}
	if viol == 0 {
		t.Fatal("no associativity violations in random sample")
	}
	t.Logf("associativity violations: %d/%d", viol, total)
}

func TestPropDistributivityFails(t *testing.T) {
	var e Env
	// Canonical witness: a*(b+c) != a*b + a*c.
	a := b64(0.1)
	bb := b64(0.2)
	c := b64(0.3)
	l := Binary64.Mul(&e, a, Binary64.Add(&e, bb, c))
	r := Binary64.Add(&e, Binary64.Mul(&e, a, bb), Binary64.Mul(&e, a, c))
	if sameFloat64(l, r) {
		// This particular triple may round identically on some
		// formats; search for a witness instead.
		rng := newRng(t)
		found := false
		for i := 0; i < 100000 && !found; i++ {
			x, y, z := randBits64(rng), randBits64(rng), randBits64(rng)
			if Binary64.IsNaN(x) || Binary64.IsNaN(y) || Binary64.IsNaN(z) {
				continue
			}
			l = Binary64.Mul(&e, x, Binary64.Add(&e, y, z))
			r = Binary64.Add(&e, Binary64.Mul(&e, x, y), Binary64.Mul(&e, x, z))
			if !sameFloat64(l, r) && !Binary64.IsNaN(l) {
				found = true
			}
		}
		if !found {
			t.Fatal("no distributivity violation found")
		}
	}
}

func TestPropOrderingFails(t *testing.T) {
	// ((a+b)-a) == b is not an identity.
	var e Env
	a := b64(1e16)
	bb := b64(1)
	got := Binary64.Sub(&e, Binary64.Add(&e, a, bb), a)
	if sameFloat64(got, bb) {
		t.Fatal("expected ((1e16+1)-1e16) != 1")
	}
}

func TestPropIdentityFailsOnlyForNaN(t *testing.T) {
	var e Env
	prop := func(a uint64) bool {
		eq := Binary64.Eq(&e, a, a)
		return eq == !Binary64.IsNaN(a)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropNegationInvolutive(t *testing.T) {
	prop := func(a uint64) bool {
		return Binary64.Neg(Binary64.Neg(a))&Binary64.mask() == a&Binary64.mask()
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubIsAddNeg(t *testing.T) {
	var e Env
	prop := func(a, b uint64) bool {
		return sameFloat64(Binary64.Sub(&e, a, b), Binary64.Add(&e, a, Binary64.Neg(b)))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropDivSelfIsOne(t *testing.T) {
	var e Env
	prop := func(a uint64) bool {
		if Binary64.IsNaN(a) || Binary64.IsZero(a) || Binary64.IsInf(a, 0) {
			return true
		}
		return Binary64.Div(&e, a, a) == b64(1)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropSqrtSquareWithinUlp(t *testing.T) {
	// sqrt(x)^2 is within 1 ulp of x for positive finite x (not exact:
	// a quiz-relevant subtlety).
	var e Env
	prop := func(a uint64) bool {
		if Binary64.IsNaN(a) || Binary64.SignBit(a) || Binary64.IsInf(a, 0) || Binary64.IsZero(a) {
			return true
		}
		s := Binary64.Sqrt(&e, a)
		back := Binary64.Mul(&e, s, s)
		if Binary64.IsInf(back, 0) || Binary64.IsZero(back) {
			return true // extreme range
		}
		diff := math.Abs(f64(back) - f64(a))
		return diff <= math.Abs(f64(a))*1e-15
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	var e Env
	prop := func(a, b uint64) bool {
		o1 := Binary64.CompareQuiet(&e, a, b)
		o2 := Binary64.CompareQuiet(&e, b, a)
		switch o1 {
		case Less:
			return o2 == Greater
		case Greater:
			return o2 == Less
		case Equal:
			return o2 == Equal
		case Unordered:
			return o2 == Unordered
		}
		return false
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropFMAExactWhenProductFits(t *testing.T) {
	// With small integer operands, fma(a,b,c) == a*b + c exactly.
	var e Env
	rng := newRng(t)
	for i := 0; i < 20000; i++ {
		a := b64(float64(rng.Intn(1 << 20)))
		b := b64(float64(rng.Intn(1 << 20)))
		c := b64(float64(rng.Intn(1 << 20)))
		fused := Binary64.FMA(&e, a, b, c)
		sep := Binary64.Add(&e, Binary64.Mul(&e, a, b), c)
		if !sameFloat64(fused, sep) {
			t.Fatalf("fma mismatch on exact case: %v*%v+%v", f64(a), f64(b), f64(c))
		}
	}
}

func TestPropRoundTripInt(t *testing.T) {
	// Integers up to 2^53 convert to binary64 and back exactly.
	var e Env
	rng := newRng(t)
	for i := 0; i < 20000; i++ {
		v := int64(rng.Uint64() % (1 << 53))
		if rng.Intn(2) == 0 {
			v = -v
		}
		x := Binary64.FromInt64(&e, v)
		back := Binary64.ToInt64(&e, x)
		if back != v {
			t.Fatalf("roundtrip %d -> %v -> %d", v, f64(x), back)
		}
		if e.LastRaised != 0 {
			t.Fatalf("roundtrip %d raised %v", v, e.LastRaised)
		}
	}
}

func TestPropFlagsMonotone(t *testing.T) {
	// Sticky flags never clear across operations.
	var e Env
	rng := newRng(t)
	prev := Flags(0)
	for i := 0; i < 5000; i++ {
		Binary64.Add(&e, randBits64(rng), randBits64(rng))
		if e.Flags&prev != prev {
			t.Fatal("sticky flags lost bits")
		}
		prev = e.Flags
	}
}

func TestPropConversionNarrowWiden16(t *testing.T) {
	// Any binary16 value widened to 32 or 64 and narrowed back is
	// unchanged (exact embedding).
	var e Env
	for x := uint64(0); x < 1<<16; x++ {
		if Binary16.IsNaN(x) {
			continue
		}
		via32 := Binary32.Convert(&e, Binary16, Binary16.Convert(&e, Binary32, x))
		if via32 != x {
			t.Fatalf("16->32->16 changed %#04x -> %#04x", x, via32)
		}
	}
}
