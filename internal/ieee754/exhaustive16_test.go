package ieee754

// Exhaustive and densely sampled verification of binary16.
//
// Binary16 results can be verified through float64 arithmetic: for
// precisions p=11 (half) and P=53 (double), P >= 2p+2, so rounding a
// correctly rounded double result to half gives the correctly rounded
// half result for add, sub, mul, div, sqrt and fma (Figueroa's
// double-rounding theorem). That makes Go's hardware float64 a complete
// oracle for binary16.

import (
	"math"
	"testing"
)

// refNarrow rounds a float64 value to binary16 through the softfloat
// convert (which is itself cross-validated against hardware for 64->32).
func refNarrow16(v float64) uint64 {
	var e Env
	return Binary64.Convert(&e, Binary16, math.Float64bits(v))
}

func TestBinary16SqrtExhaustive(t *testing.T) {
	var e Env
	for x := uint64(0); x < 1<<16; x++ {
		got := Binary16.Sqrt(&e, x)
		want := refNarrow16(math.Sqrt(Binary16.ToFloat64(x)))
		if Binary16.IsNaN(got) && Binary16.IsNaN(want) {
			continue
		}
		if got != want {
			t.Fatalf("sqrt16(%#04x ~ %v): got %#04x (%v) want %#04x (%v)",
				x, Binary16.ToFloat64(x), got, Binary16.ToFloat64(got),
				want, Binary16.ToFloat64(want))
		}
	}
}

func TestBinary16ConvertRoundTripExhaustive(t *testing.T) {
	var e Env
	for x := uint64(0); x < 1<<16; x++ {
		// Widening then narrowing must be the identity (NaNs may
		// quieten).
		w := Binary16.Convert(&e, Binary64, x)
		n := Binary64.Convert(&e, Binary16, w)
		if Binary16.IsNaN(x) {
			if !Binary16.IsNaN(n) {
				t.Fatalf("NaN roundtrip %#04x -> %#04x", x, n)
			}
			continue
		}
		if n != x {
			t.Fatalf("roundtrip %#04x -> %v -> %#04x", x, f64(w), n)
		}
	}
}

func TestBinary16NegAbsExhaustive(t *testing.T) {
	for x := uint64(0); x < 1<<16; x++ {
		if Binary16.Neg(Binary16.Neg(x)) != x {
			t.Fatalf("neg(neg(%#04x)) != identity", x)
		}
		if Binary16.SignBit(Binary16.Abs(x)) {
			t.Fatalf("abs(%#04x) has sign bit", x)
		}
	}
}

func TestBinary16ClassifyExhaustive(t *testing.T) {
	counts := map[Class]int{}
	for x := uint64(0); x < 1<<16; x++ {
		counts[Binary16.Classify(x)]++
	}
	// Known census of the binary16 encoding space.
	wants := map[Class]int{
		ClassPosZero: 1, ClassNegZero: 1,
		ClassPosInf: 1, ClassNegInf: 1,
		ClassPosSubnormal: 1023, ClassNegSubnormal: 1023,
		ClassPosNormal: 30720, ClassNegNormal: 30720,
		ClassQuietNaN: 1024, ClassSignalingNaN: 1022,
	}
	for c, want := range wants {
		if counts[c] != want {
			t.Errorf("class %v: count %d, want %d", c, counts[c], want)
		}
	}
}

// stratified16 returns a grid of binary16 values covering every exponent
// with several significand patterns, plus all the special values.
func stratified16() []uint64 {
	var out []uint64
	for exp := uint64(0); exp <= 31; exp++ {
		for _, fr := range []uint64{0, 1, 0x155, 0x2aa, 0x3fe, 0x3ff} {
			out = append(out, exp<<10|fr, 1<<15|exp<<10|fr)
		}
	}
	return out
}

func TestBinary16AddStratifiedPairs(t *testing.T) {
	var e Env
	vals := stratified16()
	for _, a := range vals {
		for _, b := range vals {
			got := Binary16.Add(&e, a, b)
			want := refNarrow16(Binary16.ToFloat64(a) + Binary16.ToFloat64(b))
			if Binary16.IsNaN(got) && Binary16.IsNaN(want) {
				continue
			}
			if got != want {
				t.Fatalf("add16(%#04x, %#04x): got %#04x want %#04x", a, b, got, want)
			}
		}
	}
}

func TestBinary16MulStratifiedPairs(t *testing.T) {
	var e Env
	vals := stratified16()
	for _, a := range vals {
		for _, b := range vals {
			got := Binary16.Mul(&e, a, b)
			want := refNarrow16(Binary16.ToFloat64(a) * Binary16.ToFloat64(b))
			if Binary16.IsNaN(got) && Binary16.IsNaN(want) {
				continue
			}
			if got != want {
				t.Fatalf("mul16(%#04x, %#04x): got %#04x want %#04x", a, b, got, want)
			}
		}
	}
}

func TestBinary16DivStratifiedPairs(t *testing.T) {
	var e Env
	vals := stratified16()
	for _, a := range vals {
		for _, b := range vals {
			got := Binary16.Div(&e, a, b)
			want := refNarrow16(Binary16.ToFloat64(a) / Binary16.ToFloat64(b))
			if Binary16.IsNaN(got) && Binary16.IsNaN(want) {
				continue
			}
			if got != want {
				t.Fatalf("div16(%#04x, %#04x): got %#04x want %#04x", a, b, got, want)
			}
		}
	}
}

func TestBinary16RandomPairsAllOps(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < 300000; i++ {
		a := rng.Uint64() & 0xffff
		b := rng.Uint64() & 0xffff
		va, vb := Binary16.ToFloat64(a), Binary16.ToFloat64(b)
		checks := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"add", Binary16.Add(&e, a, b), refNarrow16(va + vb)},
			{"sub", Binary16.Sub(&e, a, b), refNarrow16(va - vb)},
			{"mul", Binary16.Mul(&e, a, b), refNarrow16(va * vb)},
			{"div", Binary16.Div(&e, a, b), refNarrow16(va / vb)},
		}
		for _, c := range checks {
			if Binary16.IsNaN(c.got) && Binary16.IsNaN(c.want) {
				continue
			}
			if c.got != c.want {
				t.Fatalf("%s16(%#04x~%v, %#04x~%v): got %#04x want %#04x",
					c.name, a, va, b, vb, c.got, c.want)
			}
		}
	}
}

func TestBinary16FMARandom(t *testing.T) {
	var e Env
	rng := newRng(t)
	for i := 0; i < 100000; i++ {
		a := rng.Uint64() & 0xffff
		b := rng.Uint64() & 0xffff
		c := rng.Uint64() & 0xffff
		got := Binary16.FMA(&e, a, b, c)
		want := refNarrow16(math.FMA(Binary16.ToFloat64(a), Binary16.ToFloat64(b), Binary16.ToFloat64(c)))
		if Binary16.IsNaN(got) && Binary16.IsNaN(want) {
			continue
		}
		if got != want {
			t.Fatalf("fma16(%#04x, %#04x, %#04x): got %#04x want %#04x", a, b, c, got, want)
		}
	}
}

func TestBinary16DenormalPrecisionLoss(t *testing.T) {
	// The "Denormal Precision" quiz fact: numbers closer to zero in the
	// subnormal range carry fewer significant bits. Verify the ulp/value
	// ratio grows as subnormals shrink.
	ulp := Binary16.ToFloat64(Binary16.MinSubnormal())
	prev := math.Inf(1)
	for _, x := range []uint64{0x3ff, 0x100, 0x10, 0x1} { // descending subnormals
		v := Binary16.ToFloat64(x)
		rel := ulp / v
		if rel <= 0 {
			t.Fatalf("bad rel precision at %#04x", x)
		}
		if rel <= 1.0/prev {
			// relative error must grow (precision shrink) as v shrinks
			_ = prev
		}
		if sig := math.Log2(v / ulp); sig > 11 {
			t.Fatalf("subnormal %#04x claims %v significant bits", x, sig)
		}
		prev = v
	}
	// The smallest subnormal has exactly 1 significant bit.
	if Binary16.ToFloat64(1)/ulp != 1 {
		t.Fatal("min subnormal should be 1 ulp")
	}
}
