package ieee754

// FMA returns a*b + c with a single rounding (fused multiply-add, the
// "MADD" operation of the paper's optimization quiz). Fused multiply-add
// was added to IEEE 754 in the 2008 revision; it was not part of the
// original 1985 standard and can produce different results than a
// multiplication followed by a separate addition.
//
// Invalid is raised for 0*inf (even when c is a quiet NaN, matching
// Berkeley SoftFloat) and for inf*x + (-inf) cancellation.
func (f Format) FMA(e *Env, a, b, c uint64) uint64 {
	e.begin()
	r := f.fma(e, a, b, c)
	return e.finish("fma", f, 3, a, b, c, r)
}

func (f Format) fma(e *Env, a, b, c uint64) uint64 {
	aNaN, bNaN, cNaN := f.IsNaN(a), f.IsNaN(b), f.IsNaN(c)
	if aNaN || bNaN || cNaN {
		if f.IsSignalingNaN(a) || f.IsSignalingNaN(b) || f.IsSignalingNaN(c) {
			e.raise(FlagInvalid)
		}
		// An invalid product (0 * inf) outranks propagation of a
		// quiet NaN from c.
		aInf0, bInf0 := f.IsInf(a, 0), f.IsInf(b, 0)
		aZero0, bZero0 := f.IsZero(a), f.IsZero(b)
		if !aNaN && !bNaN && ((aInf0 && bZero0) || (bInf0 && aZero0)) {
			e.raise(FlagInvalid)
			return f.QNaN()
		}
		switch {
		case aNaN:
			return f.quiet(a)
		case bNaN:
			return f.quiet(b)
		default:
			return f.quiet(c)
		}
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	c = e.daz(f, c)

	signP := f.SignBit(a) != f.SignBit(b)
	aInf, bInf, cInf := f.IsInf(a, 0), f.IsInf(b, 0), f.IsInf(c, 0)
	aZero, bZero, cZero := f.IsZero(a), f.IsZero(b), f.IsZero(c)

	if (aInf && bZero) || (bInf && aZero) {
		e.raise(FlagInvalid)
		return f.QNaN()
	}
	if aInf || bInf {
		// Product is a signed infinity.
		if cInf && f.SignBit(c) != signP {
			e.raise(FlagInvalid)
			return f.QNaN()
		}
		return f.Inf(signP)
	}
	if cInf {
		return c
	}
	if aZero || bZero {
		// Product is a signed zero; fall back to addition semantics
		// to get the zero-sign rules right.
		return f.addSub(e, f.Zero(signP), c, false)
	}
	if cZero {
		// Exact product plus zero: the product rounds on its own,
		// except (+0) + (-0) style interactions don't arise since
		// the product is nonzero.
		ua, ub := f.unpackFinite(a), f.unpackFinite(b)
		p := mul64(ua.sig, ub.sig)
		exp := ua.exp + ub.exp
		if p.hi&(1<<63) != 0 {
			exp++
		} else {
			p = p.shl(1)
		}
		return f.roundPack128(e, signP, exp, p, false)
	}

	ua, ub, uc := f.unpackFinite(a), f.unpackFinite(b), f.unpackFinite(c)

	// Exact 128-bit product, normalized with MSB at bit 127; abstract
	// value = prod/2^127 * 2^expP.
	prod := mul64(ua.sig, ub.sig)
	expP := ua.exp + ub.exp
	if prod.hi&(1<<63) != 0 {
		expP++
	} else {
		prod = prod.shl(1)
	}
	signC := f.SignBit(c)
	// Addend in the same fixed-point convention: value =
	// cv/2^127 * 2^expC.
	cv := uint128{uc.sig, 0}
	expC := uc.exp

	if signP == signC {
		return f.fmaAddMags(e, signP, expP, prod, expC, cv)
	}
	return f.fmaSubMags(e, signP, expP, prod, expC, cv)
}

// fmaAddMags adds two same-signed 128-bit magnitudes in the
// value = x/2^127 * 2^exp convention.
func (f Format) fmaAddMags(e *Env, sign bool, expA int, av uint128, expB int, bv uint128) uint64 {
	if expA < expB || (expA == expB && av.cmp(bv) < 0) {
		expA, expB = expB, expA
		av, bv = bv, av
	}
	d := uint(expA - expB)
	bv = bv.shrJam(d)
	sum, carry := av.addCarry(bv)
	exp := expA
	if carry != 0 {
		lost := sum.lo&1 != 0
		sum = sum.shr(1)
		sum.hi |= 1 << 63
		if lost {
			sum.lo |= 1
		}
		exp++
	}
	return f.roundPack128(e, sign, exp, sum, false)
}

// fmaSubMags computes sign(a)*(|a| - |b|) over 128-bit magnitudes in the
// value = x/2^127 * 2^exp convention.
func (f Format) fmaSubMags(e *Env, signA bool, expA int, av uint128, expB int, bv uint128) uint64 {
	if expA < expB || (expA == expB && av.cmp(bv) < 0) {
		expA, expB = expB, expA
		av, bv = bv, av
		signA = !signA
	}
	if expA == expB && av.cmp(bv) == 0 {
		return f.Zero(e.Rounding == TowardNegative)
	}
	d := uint(expA - expB)
	sticky := bv.shrLoses(d)
	bv = bv.shr(d)
	diff := av.sub(bv)
	if sticky {
		// True subtrahend exceeded the truncated one: borrow one ulp
		// and keep the residue as sticky.
		diff = diff.sub(uint128{0, 1})
	}
	return f.roundPack128(e, signA, expA, diff, sticky)
}
