package ieee754

import (
	"math"
	"math/bits"
)

// Convert converts x from format f to format g, rounding per the
// environment. Widening conversions between the standard formats are
// exact; narrowing conversions may raise overflow/underflow/inexact.
// NaN payloads are preserved left-aligned, as hardware does; signaling
// NaNs are quieted and raise invalid.
func (f Format) Convert(e *Env, g Format, x uint64) uint64 {
	e.begin()
	r := f.convert(e, g, x)
	return e.finish("cvt", g, 1, x, 0, 0, r)
}

func (f Format) convert(e *Env, g Format, x uint64) uint64 {
	if f.IsNaN(x) {
		if f.IsSignalingNaN(x) {
			e.raise(FlagInvalid)
		}
		// Preserve the payload left-aligned; always quiet.
		payload := f.frac(x) &^ f.quietBit()
		var np uint64
		if f.FracBits > g.FracBits {
			np = payload >> (f.FracBits - g.FracBits)
		} else {
			np = payload << (g.FracBits - f.FracBits)
		}
		np &= g.fracMask() &^ g.quietBit()
		r := g.pack(f.SignBit(x), g.expMask(), np|g.quietBit())
		return r
	}
	x = e.daz(f, x)
	switch {
	case f.IsInf(x, 0):
		return g.Inf(f.SignBit(x))
	case f.IsZero(x):
		return g.Zero(f.SignBit(x))
	}
	u := f.unpackFinite(x)
	return g.roundPack(e, u.sign, u.exp, u.sig, false)
}

// FromFloat64 converts a Go float64 into format f. For f == Binary64
// this is a re-rounding no-op.
func (f Format) FromFloat64(e *Env, v float64) uint64 {
	return Binary64.Convert(e, f, math.Float64bits(v))
}

// ToFloat64 converts an encoding in format f to a Go float64. For the
// three standard formats this is exact (widening). The conversion is
// flag-free; it exists for display and interop.
func (f Format) ToFloat64(x uint64) float64 {
	if f == Binary64 {
		return math.Float64frombits(x & f.mask())
	}
	var e Env // fresh environment: exact widening raises nothing
	return math.Float64frombits(f.Convert(&e, Binary64, x))
}

// FromInt64 converts a signed integer to format f, rounding if the
// integer has more significant bits than the format's precision.
func (f Format) FromInt64(e *Env, v int64) uint64 {
	e.begin()
	r := f.fromInt64(e, v)
	return e.finish("cvt_i2f", f, 1, uint64(v), 0, 0, r)
}

func (f Format) fromInt64(e *Env, v int64) uint64 {
	if v == 0 {
		return f.Zero(false)
	}
	sign := v < 0
	var mag uint64
	if sign {
		mag = uint64(-v) // works for MinInt64 via two's complement
	} else {
		mag = uint64(v)
	}
	lz := uint(bits.LeadingZeros64(mag))
	sig := mag << lz
	exp := 63 - int(lz)
	return f.roundPack(e, sign, exp, sig, false)
}

// FromUint64 converts an unsigned integer to format f.
func (f Format) FromUint64(e *Env, v uint64) uint64 {
	e.begin()
	r := f.fromUint64(e, v)
	return e.finish("cvt_u2f", f, 1, v, 0, 0, r)
}

func (f Format) fromUint64(e *Env, v uint64) uint64 {
	if v == 0 {
		return f.Zero(false)
	}
	lz := uint(bits.LeadingZeros64(v))
	return f.roundPack(e, false, 63-int(lz), v<<lz, false)
}

// ToInt64 converts x to a signed 64-bit integer using the environment's
// rounding mode. NaN and out-of-range values (including infinities)
// raise invalid and return the closest representable extreme, matching
// common hardware saturation behaviour. Inexact is raised when rounding
// discards a fraction.
func (f Format) ToInt64(e *Env, x uint64) int64 {
	e.begin()
	r := f.toInt64(e, x)
	e.finish("cvt_f2i", f, 1, x, 0, 0, uint64(r))
	return r
}

func (f Format) toInt64(e *Env, x uint64) int64 {
	if f.IsNaN(x) {
		e.raise(FlagInvalid)
		return math.MinInt64
	}
	x = e.daz(f, x)
	if f.IsInf(x, 0) {
		e.raise(FlagInvalid)
		if f.SignBit(x) {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	if f.IsZero(x) {
		return 0
	}
	u := f.unpackFinite(x)
	// Value = sig/2^63 * 2^exp. Integer part needs exp+1 bits.
	if u.exp > 62 {
		// Magnitude >= 2^63: only -2^63 exactly fits.
		if u.sign && u.exp == 63 && u.sig == 1<<63 {
			return math.MinInt64
		}
		e.raise(FlagInvalid)
		if u.sign {
			return math.MinInt64
		}
		return math.MaxInt64
	}
	if u.exp < 0 {
		// |x| < 1: rounds to 0, +-1 depending on mode.
		n := f.roundSmallToInt(e, u)
		return n
	}
	shift := uint(63 - u.exp)
	mag := u.sig >> shift
	fracBits := u.sig << (64 - shift)
	if shift == 0 {
		fracBits = 0
	}
	if fracBits != 0 {
		e.raise(FlagInexact)
		if f.roundAwayInt(e, u.sign, fracBits, mag&1 == 1) {
			mag++
		}
	}
	// Saturate if rounding pushed the magnitude out of range.
	if !u.sign && mag > math.MaxInt64 {
		e.raise(FlagInvalid)
		return math.MaxInt64
	}
	if u.sign {
		if mag > 1<<63 {
			e.raise(FlagInvalid)
			return math.MinInt64
		}
		return -int64(mag) // handles mag == 2^63 via wraparound
	}
	return int64(mag)
}

// roundSmallToInt rounds |x| < 1 to 0 or 1 (then signs it).
func (f Format) roundSmallToInt(e *Env, u unpacked) int64 {
	e.raise(FlagInexact)
	// fraction = sig/2^63 * 2^exp with exp < 0; the "half" point is
	// exp == -1 with sig == 2^63.
	var away bool
	half := u.exp == -1 && u.sig == 1<<63
	moreThanHalf := u.exp == -1 && u.sig > 1<<63
	switch e.Rounding {
	case NearestEven:
		away = moreThanHalf // ties go to even 0
	case NearestAway:
		away = moreThanHalf || half
	case TowardZero:
		away = false
	case TowardPositive:
		away = !u.sign
	case TowardNegative:
		away = u.sign
	}
	if !away {
		return 0
	}
	if u.sign {
		return -1
	}
	return 1
}

// roundAwayInt decides whether truncated integer conversion should round
// away from zero, given the discarded fraction bits (left-aligned in a
// uint64) and the parity of the truncated integer.
func (f Format) roundAwayInt(e *Env, sign bool, fracBits uint64, odd bool) bool {
	const half = 1 << 63
	switch e.Rounding {
	case NearestEven:
		return fracBits > half || (fracBits == half && odd)
	case NearestAway:
		return fracBits >= half
	case TowardZero:
		return false
	case TowardPositive:
		return !sign
	case TowardNegative:
		return sign
	}
	return false
}

// RoundToIntegral rounds x to an integral value in the same format using
// the environment's rounding mode, raising inexact when the value
// changes (IEEE roundToIntegralExact).
func (f Format) RoundToIntegral(e *Env, x uint64) uint64 {
	e.begin()
	r := f.roundToIntegral(e, x)
	return e.finish("rint", f, 1, x, 0, 0, r)
}

func (f Format) roundToIntegral(e *Env, x uint64) uint64 {
	if f.IsNaN(x) {
		return f.propagateNaN(e, x, x)
	}
	x = e.daz(f, x)
	if f.IsInf(x, 0) || f.IsZero(x) {
		return x
	}
	u := f.unpackFinite(x)
	if u.exp >= int(f.FracBits) {
		return x // already integral: ulp >= 1
	}
	if u.exp < 0 {
		n := f.roundSmallToInt(e, u)
		switch n {
		case 0:
			return f.Zero(u.sign)
		default:
			return f.One(u.sign)
		}
	}
	shift := uint(63 - u.exp)
	ip := u.sig >> shift
	fracBits := u.sig << (64 - shift)
	if fracBits == 0 {
		return x
	}
	e.raise(FlagInexact)
	if f.roundAwayInt(e, u.sign, fracBits, ip&1 == 1) {
		ip++
	}
	if ip == 0 {
		return f.Zero(u.sign)
	}
	lz := uint(bits.LeadingZeros64(ip))
	return f.roundPack(e, u.sign, 63-int(lz), ip<<lz, false)
}
