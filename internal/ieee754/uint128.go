package ieee754

import "math/bits"

// uint128 is an unsigned 128-bit integer used for exact intermediate
// significands in subtraction, FMA, and square root.
type uint128 struct {
	hi, lo uint64
}

// isZero reports whether u == 0.
func (u uint128) isZero() bool { return u.hi == 0 && u.lo == 0 }

// add returns u + v, discarding carry out of bit 127.
func (u uint128) add(v uint128) uint128 {
	lo, c := bits.Add64(u.lo, v.lo, 0)
	hi, _ := bits.Add64(u.hi, v.hi, c)
	return uint128{hi, lo}
}

// addCarry returns u + v and the carry out of bit 127.
func (u uint128) addCarry(v uint128) (uint128, uint64) {
	lo, c := bits.Add64(u.lo, v.lo, 0)
	hi, c2 := bits.Add64(u.hi, v.hi, c)
	return uint128{hi, lo}, c2
}

// sub returns u - v (two's complement wraparound on underflow).
func (u uint128) sub(v uint128) uint128 {
	lo, b := bits.Sub64(u.lo, v.lo, 0)
	hi, _ := bits.Sub64(u.hi, v.hi, b)
	return uint128{hi, lo}
}

// cmp returns -1, 0, or +1 as u is less than, equal to, or greater
// than v.
func (u uint128) cmp(v uint128) int {
	switch {
	case u.hi < v.hi:
		return -1
	case u.hi > v.hi:
		return 1
	case u.lo < v.lo:
		return -1
	case u.lo > v.lo:
		return 1
	}
	return 0
}

// shl returns u << n for 0 <= n < 128.
func (u uint128) shl(n uint) uint128 {
	switch {
	case n == 0:
		return u
	case n < 64:
		return uint128{u.hi<<n | u.lo>>(64-n), u.lo << n}
	case n < 128:
		return uint128{u.lo << (n - 64), 0}
	}
	return uint128{}
}

// shr returns u >> n for 0 <= n < 128 (no jamming).
func (u uint128) shr(n uint) uint128 {
	switch {
	case n == 0:
		return u
	case n < 64:
		return uint128{u.hi >> n, u.lo>>n | u.hi<<(64-n)}
	case n < 128:
		return uint128{0, u.hi >> (n - 64)}
	}
	return uint128{}
}

// shrJam returns u >> n with all shifted-out bits jammed into the least
// significant bit. For n >= 128 the result is 0 or 1.
func (u uint128) shrJam(n uint) uint128 {
	if n == 0 {
		return u
	}
	if n >= 128 {
		if !u.isZero() {
			return uint128{0, 1}
		}
		return uint128{}
	}
	r := u.shr(n)
	if u.shl(128 - n).isZero() {
		return r
	}
	return uint128{r.hi, r.lo | 1}
}

// shrLoses reports whether u >> n would lose any set bits.
func (u uint128) shrLoses(n uint) bool {
	if n == 0 {
		return false
	}
	if n >= 128 {
		return !u.isZero()
	}
	return !u.shl(128 - n).isZero()
}

// leadingZeros returns the number of leading zero bits in u (128 when
// u == 0).
func (u uint128) leadingZeros() uint {
	if u.hi != 0 {
		return uint(bits.LeadingZeros64(u.hi))
	}
	return 64 + uint(bits.LeadingZeros64(u.lo))
}

// top64Jam collapses u to a 64-bit significand taking the high word and
// jamming the low word into its LSB. u must already be normalized with
// its most significant bit at bit 127.
func (u uint128) top64Jam() uint64 {
	s := u.hi
	if u.lo != 0 {
		s |= 1
	}
	return s
}

// mul64 returns the full 128-bit product x*y.
func mul64(x, y uint64) uint128 {
	hi, lo := bits.Mul64(x, y)
	return uint128{hi, lo}
}

// sqrt128 returns floor(sqrt(u)) and whether the square root was exact.
// It uses the classic restoring (digit-by-digit) method over 64 result
// bits.
func sqrt128(u uint128) (root uint64, exact bool) {
	var rem, acc uint128 // remainder and current root (as 128-bit)
	x := u
	// Process two input bits per iteration, from the top.
	for i := 0; i < 64; i++ {
		// rem = rem<<2 | top two bits of x.
		rem = rem.shl(2)
		rem.lo |= x.hi >> 62
		x = x.shl(2)
		// Trial subtrahend: (acc<<2) | 1.
		trial := acc.shl(2)
		trial.lo |= 1
		acc = acc.shl(1)
		if rem.cmp(trial) >= 0 {
			rem = rem.sub(trial)
			acc.lo |= 1
		}
	}
	return acc.lo, rem.isZero()
}
