package ieee754

import "testing"

// Hot-path microbenchmarks for the three core arithmetic operations on
// binary64. ReportAllocs guards the zero-allocation contract of the
// unobserved path (no OpEvent is materialised when Env.Observer is
// nil).

var benchSink uint64

func benchOperands() (a, b, c uint64) {
	f := Binary64
	var e Env
	return f.FromFloat64(&e, 1.5000000001), f.FromFloat64(&e, 2.9999999997), f.FromFloat64(&e, 0.1)
}

func BenchmarkAddBinary64(b *testing.B) {
	e := NewEnv()
	x, y, _ := benchOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Binary64.Add(e, x, y)
	}
}

func BenchmarkMulBinary64(b *testing.B) {
	e := NewEnv()
	x, y, _ := benchOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Binary64.Mul(e, x, y)
	}
}

func BenchmarkFMABinary64(b *testing.B) {
	e := NewEnv()
	x, y, z := benchOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Binary64.FMA(e, x, y, z)
	}
}

// BenchmarkAddBinary64Observed measures the same add with an observer
// installed — the cost of materialising and delivering the OpEvent.
func BenchmarkAddBinary64Observed(b *testing.B) {
	e := NewEnv()
	var events int
	e.Observer = func(OpEvent) { events++ }
	x, y, _ := benchOperands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Binary64.Add(e, x, y)
	}
}
