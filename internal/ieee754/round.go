package ieee754

import "math/bits"

// roundPack rounds and packs a finite nonzero intermediate result.
//
// The abstract value is (-1)^sign * (sig / 2^63) * 2^exp, where sig is
// normalized with its most significant bit at bit 63. sticky indicates
// that additional nonzero bits were already discarded below sig.
//
// roundPack handles rounding to the format's precision, overflow
// saturation per the rounding mode, gradual underflow into the subnormal
// range, and the FTZ control. It raises overflow/underflow/inexact (and
// denormal for subnormal results) on e.raised.
func (f Format) roundPack(e *Env, sign bool, exp int, sig uint64, sticky bool) uint64 {
	if sig == 0 {
		if sticky {
			// A pure-sticky residue rounds as an inexact tiny value.
			return f.roundTiny(e, sign)
		}
		return f.Zero(sign)
	}
	// Normalize defensively (callers normally pass MSB at bit 63).
	if lz := uint(bits.LeadingZeros64(sig)); lz > 0 {
		sig <<= lz
		exp -= int(lz)
	}

	p := f.Precision() // kept significand bits, including implicit bit
	drop := 64 - p     // bits below the kept significand

	tiny := exp < f.Emin()
	if tiny {
		// Denormalize: shift right so the value lines up with the
		// subnormal grid at exponent Emin.
		shift := uint64(f.Emin() - exp)
		if shift >= 64 {
			if sig != 0 {
				sticky = true
			}
			sig = 0
		} else {
			if sig<<(64-shift) != 0 {
				sticky = true
			}
			sig >>= shift
		}
		exp = f.Emin()
	}

	kept := sig >> drop
	roundBit := sig>>(drop-1)&1 == 1
	lowRest := sig<<(64-(drop-1)) != 0 // bits below the round bit
	if drop == 1 {
		lowRest = false
	}
	stickyAll := sticky || lowRest
	inexact := roundBit || stickyAll

	up := false
	switch e.Rounding {
	case NearestEven:
		up = roundBit && (stickyAll || kept&1 == 1)
	case NearestAway:
		up = roundBit
	case TowardZero:
		up = false
	case TowardPositive:
		up = !sign && inexact
	case TowardNegative:
		up = sign && inexact
	}
	if up {
		kept++
		if kept == 1<<p {
			// Carry out of the significand: renormalize. (Cannot
			// happen in the tiny case, where kept < 2^(p-1).)
			kept >>= 1
			exp++
		}
	}

	if tiny {
		// Subnormal (or zero) result at exponent Emin, implicit bit
		// clear, except when rounding carried up into the smallest
		// normal.
		if inexact {
			e.raise(FlagUnderflow | FlagInexact)
		}
		if kept == 0 {
			return f.Zero(sign)
		}
		if kept >= 1<<(p-1) {
			// Rounded up out of the subnormal range: deliver the
			// smallest normal. (Underflow is still raised above:
			// this package detects tininess before rounding.)
			return f.pack(sign, 1, 0)
		}
		e.raise(FlagDenormal)
		if e.FTZ {
			// Flush-to-zero: non-standard replacement of subnormal
			// results by zero. x86 raises underflow when flushing.
			e.raise(FlagUnderflow | FlagInexact)
			return f.Zero(sign)
		}
		return f.pack(sign, 0, kept)
	}

	if exp > f.Emax() {
		return f.overflow(e, sign)
	}
	if inexact {
		e.raise(FlagInexact)
	}
	biased := uint64(exp + f.Bias())
	return f.pack(sign, biased, kept&f.fracMask())
}

// roundTiny delivers the result of rounding a nonzero value too small to
// represent even after jamming (pure sticky residue).
func (f Format) roundTiny(e *Env, sign bool) uint64 {
	e.raise(FlagUnderflow | FlagInexact)
	switch e.Rounding {
	case TowardPositive:
		if !sign {
			return f.minSubOrFlush(e, sign)
		}
	case TowardNegative:
		if sign {
			return f.minSubOrFlush(e, sign)
		}
	}
	return f.Zero(sign)
}

// minSubOrFlush returns the minimum subnormal with the given sign, or a
// zero under FTZ.
func (f Format) minSubOrFlush(e *Env, sign bool) uint64 {
	e.raise(FlagDenormal)
	if e.FTZ {
		return f.Zero(sign)
	}
	x := f.MinSubnormal()
	if sign {
		x |= f.signMask()
	}
	return x
}

// overflow delivers the saturated result mandated by the rounding mode
// and raises overflow|inexact. Round-to-nearest modes deliver infinity;
// directed modes deliver either infinity or the largest finite value.
func (f Format) overflow(e *Env, sign bool) uint64 {
	e.raise(FlagOverflow | FlagInexact)
	switch e.Rounding {
	case TowardZero:
		return f.MaxFinite(sign)
	case TowardPositive:
		if sign {
			return f.MaxFinite(true)
		}
		return f.Inf(false)
	case TowardNegative:
		if sign {
			return f.Inf(true)
		}
		return f.MaxFinite(false)
	}
	return f.Inf(sign)
}

// roundPack128 rounds and packs from a 128-bit intermediate significand
// normalized with its most significant bit at bit 127; the abstract value
// is (-1)^sign * (x / 2^127) * 2^exp.
func (f Format) roundPack128(e *Env, sign bool, exp int, x uint128, sticky bool) uint64 {
	if x.isZero() {
		if sticky {
			return f.roundTiny(e, sign)
		}
		return f.Zero(sign)
	}
	if lz := x.leadingZeros(); lz > 0 {
		x = x.shl(lz)
		exp -= int(lz)
	}
	sig := x.hi
	if x.lo != 0 {
		sticky = true
	}
	return f.roundPack(e, sign, exp, sig, sticky)
}
