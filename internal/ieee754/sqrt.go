package ieee754

// Sqrt returns the correctly rounded square root of a. The square root
// of a negative (nonzero) number raises invalid; sqrt(-0) is -0 and
// sqrt(+inf) is +inf per the standard.
func (f Format) Sqrt(e *Env, a uint64) uint64 {
	e.begin()
	r := f.sqrt(e, a)
	return e.finish("sqrt", f, 1, a, 0, 0, r)
}

func (f Format) sqrt(e *Env, a uint64) uint64 {
	if f.IsNaN(a) {
		return f.propagateNaN(e, a, a)
	}
	a = e.daz(f, a)
	switch {
	case f.IsZero(a):
		return a // sqrt(±0) = ±0
	case f.SignBit(a):
		e.raise(FlagInvalid)
		return f.QNaN()
	case f.IsInf(a, +1):
		return a
	}

	u := f.unpackFinite(a)
	// Arrange an even exponent: sqrt(sig/2^63 * 2^exp). For even exp,
	// root = sqrt(sig << 63) / 2^63 * 2^(exp/2); for odd exp, fold one
	// factor of two into the radicand: sqrt(sig << 64) / 2^63 *
	// 2^((exp-1)/2).
	var radicand uint128
	exp := u.exp
	if exp&1 == 0 {
		radicand = uint128{u.sig >> 1, u.sig << 63}
	} else {
		radicand = uint128{u.sig, 0}
		exp--
	}
	root, exact := sqrt128(radicand)
	return f.roundPack(e, false, exp/2, root, !exact)
}
