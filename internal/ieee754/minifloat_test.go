package ieee754

// Cross-validation of the parametric softfloat on a non-standard tiny
// format (an FP8 E4M3-like minifloat, 8 bits total) — exhaustively over
// ALL operand pairs — against exact rational arithmetic: each operation
// is recomputed exactly over the integers and rounded by an independent
// reference rounder. This exercises the softfloat's rounding/underflow/
// overflow paths far more densely than the standard formats can.

import (
	"math"
	"testing"
)

// fp8 is an IEEE-style E4M3 format (unlike the OCP FP8 E4M3 variant it
// keeps infinities and standard NaN encodings, since it follows the
// IEEE 754 encoding scheme parametrically).
var fp8 = Format{ExpBits: 4, FracBits: 3, Name: "fp8e4m3"}

// refRound rounds an exact real value represented as sign * num/den
// (num, den positive integers, den a power of two) to fp8 with
// round-to-nearest-even, mirroring the format's overflow-to-infinity
// and gradual-underflow behaviour. It is deliberately written in a
// completely different style from the production code (search over all
// encodings) so a shared bug is implausible.
func refRoundFP8(v float64) uint64 {
	if math.IsNaN(v) {
		return fp8.QNaN()
	}
	neg := math.Signbit(v)
	av := math.Abs(v)
	if math.IsInf(v, 0) {
		return fp8.Inf(neg)
	}
	// Enumerate all finite magnitudes (128 of them) and pick nearest,
	// ties to even encoding (even significand = even encoding here
	// because the fraction is the low bits).
	bestBits := uint64(0)
	bestDiff := math.Inf(1)
	for bits := uint64(0); bits < 1<<7; bits++ { // sign 0, all exp/frac
		if !fp8.IsFinite(bits) {
			continue
		}
		m := fp8.ToFloat64(bits)
		d := math.Abs(av - m)
		switch {
		case d < bestDiff:
			bestDiff, bestBits = d, bits
		case d == bestDiff && bits&1 == 0 && bestBits&1 == 1:
			bestBits = bits
		}
	}
	// Overflow rule: if the value is at least halfway past the max
	// finite magnitude, round to infinity.
	maxF := fp8.ToFloat64(fp8.MaxFinite(false))
	// The "next" representable above max would be max * (1 + 2^-p)...
	// IEEE overflow threshold is max + 1/2 ulp = max * (1 + 2^-(p)).
	ulp := fp8.ToFloat64(fp8.Ulp(fp8.MaxFinite(false)))
	if av >= maxF+ulp/2 {
		return fp8.Inf(neg)
	}
	if neg {
		return bestBits | fp8.signMask()
	}
	return bestBits
}

func TestFP8FormatBasics(t *testing.T) {
	if !fp8.Valid() {
		t.Fatal("fp8 invalid")
	}
	if fp8.Bias() != 7 || fp8.Precision() != 4 || fp8.TotalBits() != 8 {
		t.Fatalf("fp8 parameters: bias=%d p=%d", fp8.Bias(), fp8.Precision())
	}
	if got := fp8.ToFloat64(fp8.MaxFinite(false)); got != 240 {
		t.Fatalf("fp8 max = %v, want 240", got)
	}
	if got := fp8.ToFloat64(fp8.MinSubnormal()); got != 0x1p-9 {
		t.Fatalf("fp8 min subnormal = %v, want 2^-9", got)
	}
}

func TestFP8AddExhaustive(t *testing.T) {
	var e Env
	for a := uint64(0); a < 1<<8; a++ {
		if fp8.IsNaN(a) {
			continue
		}
		for b := uint64(0); b < 1<<8; b++ {
			if fp8.IsNaN(b) {
				continue
			}
			got := fp8.Add(&e, a, b)
			// Exact in float64 (4-bit significands, tiny exponents),
			// then independently rounded.
			exact := fp8.ToFloat64(a) + fp8.ToFloat64(b)
			want := refRoundFP8(exact)
			if got != want && !(fp8.IsNaN(got) && fp8.IsNaN(want)) {
				// Signed zero disagreements are resolved by IEEE rules
				// the reference rounder doesn't model; only accept
				// those for exact-zero sums.
				if exact == 0 && fp8.IsZero(got) && fp8.IsZero(want) {
					continue
				}
				t.Fatalf("fp8 add(%#02x~%v, %#02x~%v) = %#02x (%v), want %#02x (%v)",
					a, fp8.ToFloat64(a), b, fp8.ToFloat64(b),
					got, fp8.ToFloat64(got), want, fp8.ToFloat64(want))
			}
		}
	}
}

func TestFP8MulExhaustive(t *testing.T) {
	var e Env
	for a := uint64(0); a < 1<<8; a++ {
		if fp8.IsNaN(a) {
			continue
		}
		for b := uint64(0); b < 1<<8; b++ {
			if fp8.IsNaN(b) {
				continue
			}
			got := fp8.Mul(&e, a, b)
			va, vb := fp8.ToFloat64(a), fp8.ToFloat64(b)
			exact := va * vb // exact: products of 4-bit significands
			want := refRoundFP8(exact)
			if got != want && !(fp8.IsNaN(got) && fp8.IsNaN(want)) {
				if exact == 0 && fp8.IsZero(got) && fp8.IsZero(want) {
					continue
				}
				t.Fatalf("fp8 mul(%v, %v) = %v, want %v",
					va, vb, fp8.ToFloat64(got), fp8.ToFloat64(want))
			}
		}
	}
}

func TestFP8DivExhaustiveViaDouble(t *testing.T) {
	// Division is not exact in float64, but p=4 and double rounding
	// from 53 bits is safe (53 >= 2*4+2): round(double(q)) ==
	// round(exact q).
	var e Env
	for a := uint64(0); a < 1<<8; a++ {
		if fp8.IsNaN(a) {
			continue
		}
		for b := uint64(0); b < 1<<8; b++ {
			if fp8.IsNaN(b) {
				continue
			}
			got := fp8.Div(&e, a, b)
			va, vb := fp8.ToFloat64(a), fp8.ToFloat64(b)
			q := va / vb
			want := refRoundFP8(q)
			if got != want && !(fp8.IsNaN(got) && fp8.IsNaN(want)) {
				if q == 0 && fp8.IsZero(got) && fp8.IsZero(want) {
					continue
				}
				t.Fatalf("fp8 div(%v, %v) = %v, want %v",
					va, vb, fp8.ToFloat64(got), fp8.ToFloat64(want))
			}
		}
	}
}

func TestFP8SqrtExhaustive(t *testing.T) {
	var e Env
	for a := uint64(0); a < 1<<8; a++ {
		if fp8.IsNaN(a) {
			continue
		}
		got := fp8.Sqrt(&e, a)
		want := refRoundFP8(math.Sqrt(fp8.ToFloat64(a)))
		if got != want && !(fp8.IsNaN(got) && fp8.IsNaN(want)) {
			t.Fatalf("fp8 sqrt(%v) = %v, want %v",
				fp8.ToFloat64(a), fp8.ToFloat64(got), fp8.ToFloat64(want))
		}
	}
}

func TestFP8EncodingCensus(t *testing.T) {
	counts := map[Class]int{}
	for x := uint64(0); x < 1<<8; x++ {
		counts[fp8.Classify(x)]++
	}
	// 2 zeros, 2 infs, 2*7 subnormals, 2*(14 exps * 8 fracs - 8)
	// normals = 2*104... compute: normals per sign: exp in 1..14, 8
	// fracs = 112; subnormals per sign 7; NaNs: frac != 0 with exp 15:
	// 7 per sign, quiet bit (bit 2) set -> 4 quiet, 3 signaling per
	// sign.
	if counts[ClassPosNormal] != 112 || counts[ClassNegNormal] != 112 {
		t.Fatalf("normals: %v", counts)
	}
	if counts[ClassPosSubnormal] != 7 || counts[ClassNegSubnormal] != 7 {
		t.Fatalf("subnormals: %v", counts)
	}
	if counts[ClassQuietNaN] != 8 || counts[ClassSignalingNaN] != 6 {
		t.Fatalf("NaNs: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 256 {
		t.Fatalf("census total %d", total)
	}
}
