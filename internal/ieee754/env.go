package ieee754

import "strings"

// RoundingMode selects one of the five IEEE 754 rounding-direction
// attributes.
type RoundingMode uint8

const (
	// NearestEven rounds to nearest, ties to even (the default mode).
	NearestEven RoundingMode = iota
	// NearestAway rounds to nearest, ties away from zero.
	NearestAway
	// TowardZero truncates.
	TowardZero
	// TowardPositive rounds toward +infinity.
	TowardPositive
	// TowardNegative rounds toward -infinity.
	TowardNegative
)

// String returns the IEEE 754 attribute name of the mode.
func (m RoundingMode) String() string {
	switch m {
	case NearestEven:
		return "roundTiesToEven"
	case NearestAway:
		return "roundTiesToAway"
	case TowardZero:
		return "roundTowardZero"
	case TowardPositive:
		return "roundTowardPositive"
	case TowardNegative:
		return "roundTowardNegative"
	}
	return "invalidRoundingMode"
}

// Flags is a bit set of exception flags. The first five are the IEEE 754
// standard exceptions; FlagDenormal is the non-standard x86-style
// denormal-operand indication, included because the paper's suspicion
// quiz asks about it.
type Flags uint8

const (
	// FlagInvalid: the operation had no usefully definable result
	// (0/0, inf-inf, sqrt of a negative, signaling NaN operand, ...).
	// The delivered result is a quiet NaN.
	FlagInvalid Flags = 1 << iota
	// FlagDivByZero: an exact infinite result from finite operands
	// (x/0 with x finite nonzero, log(0)-style poles).
	FlagDivByZero
	// FlagOverflow: the rounded result exceeded the finite range; the
	// delivered result saturates to infinity or the largest finite
	// value depending on the rounding mode.
	FlagOverflow
	// FlagUnderflow: the result was tiny (below the normal range) and
	// inexact.
	FlagUnderflow
	// FlagInexact: the result required rounding (the paper calls this
	// condition "Precision").
	FlagInexact
	// FlagDenormal: a subnormal number was consumed as an operand or
	// delivered as a result. Non-standard; mirrors the x86 DE bit and
	// the paper's "Denorm" suspicion condition.
	FlagDenormal
)

// flagNames lists the flags in display order.
var flagNames = []struct {
	f    Flags
	name string
}{
	{FlagInvalid, "invalid"},
	{FlagDivByZero, "divbyzero"},
	{FlagOverflow, "overflow"},
	{FlagUnderflow, "underflow"},
	{FlagInexact, "inexact"},
	{FlagDenormal, "denormal"},
}

// String renders the set like "overflow|inexact"; the empty set renders
// as "none".
func (fl Flags) String() string {
	if fl == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range flagNames {
		if fl&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether every flag in q is set in fl.
func (fl Flags) Has(q Flags) bool { return fl&q == q }

// Count returns the number of flags set.
func (fl Flags) Count() int {
	n := 0
	for _, fn := range flagNames {
		if fl&fn.f != 0 {
			n++
		}
	}
	return n
}

// AllFlags is the union of every flag this package can raise.
const AllFlags = FlagInvalid | FlagDivByZero | FlagOverflow | FlagUnderflow | FlagInexact | FlagDenormal

// OpEvent describes one completed arithmetic operation; it is delivered
// to Env.Observer when one is installed.
type OpEvent struct {
	Op     string // "add", "mul", "div", "sqrt", "fma", ...
	Format Format
	A, B,
	C uint64 // operands (unused trail as 0)
	NArgs  int
	Result uint64
	Raised Flags // flags raised by this operation alone
}

// Env is a floating point environment: rounding mode, sticky exception
// flags, and non-standard mode controls. The zero value is the default
// IEEE environment (round to nearest even, no flags, FTZ/DAZ off).
//
// Env is not safe for concurrent use; give each goroutine its own.
type Env struct {
	// Rounding is the rounding-direction attribute for all operations.
	Rounding RoundingMode

	// FTZ (flush to zero) replaces subnormal results with
	// like-signed zeros. Non-standard (x86 MXCSR.FTZ).
	FTZ bool
	// DAZ (denormals are zero) treats subnormal operands as
	// like-signed zeros. Non-standard (x86 MXCSR.DAZ).
	DAZ bool

	// Flags accumulates raised exceptions (sticky, like hardware
	// status bits); clear with ClearFlags.
	Flags Flags

	// LastRaised holds the flags raised by the most recent operation.
	LastRaised Flags

	// Observer, when non-nil, is invoked after every arithmetic
	// operation. Used by the exception monitor.
	Observer func(OpEvent)

	raised Flags // accumulates during the current operation
}

// NewEnv returns an Env with the default IEEE 754 environment settings.
func NewEnv() *Env { return &Env{} }

// Clone returns an independent copy of the environment for use by
// another goroutine: the mode controls (rounding direction, FTZ, DAZ)
// and the sticky flags are carried over; the per-operation state and
// the Observer are not. The Observer is deliberately dropped because a
// shared callback would be invoked concurrently from every goroutine
// that holds a clone — install a fresh per-goroutine observer on the
// clone if events are needed.
//
// The one-Env-per-goroutine rule: an Env mutates internal state on
// every operation, so two goroutines must never share one. Clone the
// configured Env once per worker instead.
func (e *Env) Clone() *Env {
	return &Env{
		Rounding: e.Rounding,
		FTZ:      e.FTZ,
		DAZ:      e.DAZ,
		Flags:    e.Flags,
	}
}

// ClearFlags clears the sticky exception flags.
func (e *Env) ClearFlags() { e.Flags = 0 }

// TestFlags reports whether all flags in q are currently set.
func (e *Env) TestFlags(q Flags) bool { return e.Flags.Has(q) }

// raise records flags for the operation in progress.
func (e *Env) raise(f Flags) { e.raised |= f }

// begin resets per-operation state; each arithmetic entry point calls it
// exactly once.
func (e *Env) begin() { e.raised = 0 }

// finish commits per-operation flags into the sticky set, delivers the
// event to the Observer if one is installed, and returns the result for
// convenient tail calls. It takes scalar arguments rather than an
// OpEvent so that the unobserved hot path never materialises the event
// struct at all; unused operand slots are passed as 0.
func (e *Env) finish(op string, f Format, nargs int, a, b, c, r uint64) uint64 {
	e.LastRaised = e.raised
	e.Flags |= e.raised
	if e.Observer != nil {
		e.Observer(OpEvent{
			Op: op, Format: f, A: a, B: b, C: c,
			NArgs: nargs, Result: r, Raised: e.raised,
		})
	}
	return r
}

// daz applies denormals-are-zero to an operand encoding: when enabled and
// x is subnormal, it is replaced by a like-signed zero and the denormal
// flag is raised. When DAZ is off, a subnormal operand still raises the
// (non-standard) denormal-operand flag, mirroring x86's DE bit.
func (e *Env) daz(f Format, x uint64) uint64 {
	if !f.IsSubnormal(x) {
		return x
	}
	e.raise(FlagDenormal)
	if e.DAZ {
		return f.Zero(f.SignBit(x))
	}
	return x
}
