package ieee754

import (
	"math"
	"math/rand"
	"testing"
)

// specials64 is a directed corpus of interesting binary64 bit patterns.
func specials64() []uint64 {
	f := Binary64
	vals := []float64{
		0, 1, -1, 2, -2, 0.5, -0.5, 1.5, 0.1, -0.1, 3, 10, 1e10, -1e10,
		1e-300, -1e-300, 1e300, -1e300, math.Pi, -math.Pi, math.E,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		-math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1),
		math.NaN(), 1<<53 + 0, 1 << 52, 1<<53 - 1, -(1 << 52),
		math.Float64frombits(0x0010000000000000),     // min normal
		math.Float64frombits(0x000fffffffffffff),     // max subnormal
		math.Float64frombits(0x0000000000000001),     // min subnormal
		math.Float64frombits(0x7fefffffffffffff - 1), // near max
		math.Copysign(0, -1),                         // -0
	}
	var out []uint64
	for _, v := range vals {
		out = append(out, math.Float64bits(v))
	}
	out = append(out,
		f.QNaN(), f.SNaN(), f.QNaN()|f.signMask(),
		f.MaxFinite(false), f.MaxFinite(true),
		f.MinNormal(), f.MinSubnormal(),
	)
	return out
}

// randBits64 generates bit patterns that cover all regimes: uniform
// random bits hit NaN/huge exponents often; biased patterns hit normals
// near 1.0 and subnormals.
func randBits64(rng *rand.Rand) uint64 {
	switch rng.Intn(5) {
	case 0: // uniform over all encodings
		return rng.Uint64()
	case 1: // moderate exponent range around 0
		exp := uint64(1023 + rng.Intn(80) - 40)
		return rng.Uint64()&0x800fffffffffffff | exp<<52
	case 2: // subnormal
		return rng.Uint64() & 0x800fffffffffffff
	case 3: // small integers scaled
		return math.Float64bits(float64(rng.Intn(2048)-1024) * math.Ldexp(1, rng.Intn(8)-4))
	default: // near overflow/underflow boundary exponents
		exp := uint64(rng.Intn(60))
		if rng.Intn(2) == 0 {
			exp = 2046 - uint64(rng.Intn(60))
		}
		return rng.Uint64()&0x800fffffffffffff | exp<<52
	}
}

// sameFloat64 compares results treating all NaNs as equal and
// distinguishing zero signs.
func sameFloat64(a, b uint64) bool {
	if Binary64.IsNaN(a) && Binary64.IsNaN(b) {
		return true
	}
	return a == b
}

func sameFloat32(a, b uint64) bool {
	if Binary32.IsNaN(a) && Binary32.IsNaN(b) {
		return true
	}
	return a&0xffffffff == b&0xffffffff
}

func b64(v float64) uint64 { return math.Float64bits(v) }
func f64(b uint64) float64 { return math.Float64frombits(b) }
func b32(v float32) uint64 { return uint64(math.Float32bits(v)) }
func f32(b uint64) float32 { return math.Float32frombits(uint32(b)) }
func newRng(t *testing.T) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(0x5eed))
}
