package ieee754

// Mul returns a * b rounded per the environment.
func (f Format) Mul(e *Env, a, b uint64) uint64 {
	e.begin()
	r := f.mul(e, a, b)
	return e.finish("mul", f, 2, a, b, 0, r)
}

func (f Format) mul(e *Env, a, b uint64) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.propagateNaN(e, a, b)
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	sign := f.SignBit(a) != f.SignBit(b)

	aInf, bInf := f.IsInf(a, 0), f.IsInf(b, 0)
	aZero, bZero := f.IsZero(a), f.IsZero(b)
	switch {
	case (aInf && bZero) || (bInf && aZero):
		e.raise(FlagInvalid)
		return f.QNaN()
	case aInf || bInf:
		return f.Inf(sign)
	case aZero || bZero:
		return f.Zero(sign)
	}

	ua := f.unpackFinite(a)
	ub := f.unpackFinite(b)
	// Product of two bit-63-normalized significands occupies bits
	// 126..127 of the 128-bit result.
	p := mul64(ua.sig, ub.sig)
	exp := ua.exp + ub.exp
	if p.hi&(1<<63) != 0 {
		exp++ // MSB at 127: value = p/2^127 * 2^(exp+1) convention
	} else {
		p = p.shl(1)
	}
	return f.roundPack128(e, sign, exp, p, false)
}
