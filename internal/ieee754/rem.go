package ieee754

import "math/bits"

// Rem returns the IEEE 754 remainder of a with respect to b:
// r = a - b*n where n is the integer nearest the exact quotient a/b,
// with ties to even. The remainder operation is always exact; a zero
// remainder carries the sign of a.
func (f Format) Rem(e *Env, a, b uint64) uint64 {
	e.begin()
	r := f.rem(e, a, b)
	return e.finish("rem", f, 2, a, b, 0, r)
}

func (f Format) rem(e *Env, a, b uint64) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.propagateNaN(e, a, b)
	}
	a = e.daz(f, a)
	b = e.daz(f, b)
	switch {
	case f.IsInf(a, 0), f.IsZero(b):
		e.raise(FlagInvalid)
		return f.QNaN()
	case f.IsInf(b, 0), f.IsZero(a):
		return a
	}

	ua := f.unpackFinite(a)
	ub := f.unpackFinite(b)
	signA := ua.sign
	d := ua.exp - ub.exp

	// |a|/|b| = (sigA/sigB) * 2^d with sigA/sigB in (1/2, 2).
	if d < -1 {
		// |a/b| < 1/2 strictly: the nearest integer is 0.
		return a
	}
	if d == -1 {
		// |a/b| in (1/4, 1): nearest integer is 0 or 1. It is 1
		// exactly when |a| > |b|/2, i.e. sigA > sigB (a tie keeps
		// the even quotient 0).
		if ua.sig <= ub.sig {
			return a
		}
		// r = sign(a) * (|a| - |b|) = -sign(a) * (2*sigB - sigA) at
		// scale 2^(expA - 63).
		mag := ub.sig - (ua.sig - ub.sig)
		return f.normPackExact(e, !signA, ua.exp, mag)
	}

	// d >= 0: reduce sigA * 2^d modulo sigB in 32-bit chunks,
	// tracking the quotient's parity (all that the tie rule needs).
	r := ua.sig % ub.sig
	qParity := (ua.sig / ub.sig) & 1
	for d > 0 {
		step := uint(32)
		if d < 32 {
			step = uint(d)
		}
		// (r << step) mod sigB via 96-bit division. The running
		// quotient is multiplied by 2^step (becoming even), so only
		// this chunk's low bit contributes to the parity.
		hi := r >> (64 - step)
		lo := r << step
		q, rr := bits.Div64(hi, lo, ub.sig)
		qParity = q & 1
		r = rr
		d -= int(step)
	}

	// |a| = Q*|b| + r*2^(expB-63) with r in [0, sigB) and parity(Q) ==
	// qParity. Nearest-integer selection: bump Q when the residue
	// exceeds half of sigB, or equals half with Q odd.
	moreThanHalf := r > ub.sig-r
	exactlyHalf := r == ub.sig-r
	if moreThanHalf || (exactlyHalf && qParity == 1) {
		mag := ub.sig - r
		return f.normPackExact(e, !signA, ub.exp, mag)
	}
	if r == 0 {
		return f.Zero(signA)
	}
	return f.normPackExact(e, signA, ub.exp, r)
}

// normPackExact packs an exact nonzero fixed-point magnitude
// sig * 2^(exp-63) (sig not necessarily normalized). The value is always
// exactly representable when it arises from the remainder computation.
func (f Format) normPackExact(e *Env, sign bool, exp int, sig uint64) uint64 {
	lz := uint(bits.LeadingZeros64(sig))
	return f.roundPack(e, sign, exp-int(lz), sig<<lz, false)
}
