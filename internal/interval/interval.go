// Package interval implements interval arithmetic on the ieee754
// softfloat, using the directed rounding modes to maintain rigorous
// enclosures: every operation rounds the lower endpoint toward -inf and
// the upper endpoint toward +inf, so the true real-arithmetic result is
// always contained in the computed interval.
//
// This is the third remediation style the paper's conclusions gesture
// at (alongside exception monitoring and arbitrary-precision shadowing):
// instead of asking developers to *know* where rounding hurts, the
// interval width measures it. A wide interval is machine-checkable
// suspicion.
package interval

import (
	"fmt"
	"math"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

// Interval is a closed interval [Lo, Hi] of format-f values, stored as
// encodings. An interval containing any NaN endpoint is "entire"
// (unconstrained) — the arithmetic degrades safely rather than lying.
type Interval struct {
	Lo, Hi uint64
}

// Arith performs interval operations in a fixed format. It owns two
// directed-rounding environments.
type Arith struct {
	F    ieee754.Format
	down ieee754.Env
	up   ieee754.Env
}

// New creates interval arithmetic over format f.
func New(f ieee754.Format) *Arith {
	return &Arith{
		F:    f,
		down: ieee754.Env{Rounding: ieee754.TowardNegative},
		up:   ieee754.Env{Rounding: ieee754.TowardPositive},
	}
}

// Point returns the degenerate interval [x, x].
func (a *Arith) Point(x uint64) Interval { return Interval{x, x} }

// FromFloat64 returns the tightest interval containing v.
func (a *Arith) FromFloat64(v float64) Interval {
	lo := a.F.FromFloat64(&a.down, v)
	hi := a.F.FromFloat64(&a.up, v)
	return Interval{lo, hi}
}

// Entire returns the unconstrained interval [-inf, +inf].
func (a *Arith) Entire() Interval {
	return Interval{a.F.Inf(true), a.F.Inf(false)}
}

// IsEntire reports whether the interval is unconstrained.
func (a *Arith) IsEntire(x Interval) bool {
	return a.F.IsInf(x.Lo, -1) && a.F.IsInf(x.Hi, +1)
}

// valid reports whether both endpoints are non-NaN.
func (a *Arith) valid(x Interval) bool {
	return !a.F.IsNaN(x.Lo) && !a.F.IsNaN(x.Hi)
}

// Contains reports whether the scalar v lies in x.
func (a *Arith) Contains(x Interval, v uint64) bool {
	if !a.valid(x) || a.F.IsNaN(v) {
		return !a.valid(x) // entire-by-NaN contains everything non-NaN
	}
	var e ieee754.Env
	return a.F.Le(&e, x.Lo, v) && a.F.Le(&e, v, x.Hi)
}

// Width returns Hi - Lo rounded up (an upper bound on the diameter).
func (a *Arith) Width(x Interval) uint64 {
	if !a.valid(x) {
		return a.F.Inf(false)
	}
	return a.F.Sub(&a.up, x.Hi, x.Lo)
}

// Add returns the enclosure of x + y.
func (a *Arith) Add(x, y Interval) Interval {
	if !a.valid(x) || !a.valid(y) {
		return a.Entire()
	}
	return Interval{
		Lo: a.F.Add(&a.down, x.Lo, y.Lo),
		Hi: a.F.Add(&a.up, x.Hi, y.Hi),
	}
}

// Sub returns the enclosure of x - y.
func (a *Arith) Sub(x, y Interval) Interval {
	if !a.valid(x) || !a.valid(y) {
		return a.Entire()
	}
	return Interval{
		Lo: a.F.Sub(&a.down, x.Lo, y.Hi),
		Hi: a.F.Sub(&a.up, x.Hi, y.Lo),
	}
}

// Neg returns -x.
func (a *Arith) Neg(x Interval) Interval {
	if !a.valid(x) {
		return a.Entire()
	}
	return Interval{Lo: a.F.Neg(x.Hi), Hi: a.F.Neg(x.Lo)}
}

// Mul returns the enclosure of x * y (four-corner rule with directed
// rounding; 0*inf corners collapse to the entire interval for safety).
func (a *Arith) Mul(x, y Interval) Interval {
	if !a.valid(x) || !a.valid(y) {
		return a.Entire()
	}
	los := []uint64{
		a.F.Mul(&a.down, x.Lo, y.Lo), a.F.Mul(&a.down, x.Lo, y.Hi),
		a.F.Mul(&a.down, x.Hi, y.Lo), a.F.Mul(&a.down, x.Hi, y.Hi),
	}
	his := []uint64{
		a.F.Mul(&a.up, x.Lo, y.Lo), a.F.Mul(&a.up, x.Lo, y.Hi),
		a.F.Mul(&a.up, x.Hi, y.Lo), a.F.Mul(&a.up, x.Hi, y.Hi),
	}
	return a.hull(los, his)
}

// Div returns the enclosure of x / y. When y contains zero the result
// is the entire interval (division is then unbounded).
func (a *Arith) Div(x, y Interval) Interval {
	if !a.valid(x) || !a.valid(y) {
		return a.Entire()
	}
	if a.Contains(y, a.F.Zero(false)) || a.Contains(y, a.F.Zero(true)) {
		return a.Entire()
	}
	los := []uint64{
		a.F.Div(&a.down, x.Lo, y.Lo), a.F.Div(&a.down, x.Lo, y.Hi),
		a.F.Div(&a.down, x.Hi, y.Lo), a.F.Div(&a.down, x.Hi, y.Hi),
	}
	his := []uint64{
		a.F.Div(&a.up, x.Lo, y.Lo), a.F.Div(&a.up, x.Lo, y.Hi),
		a.F.Div(&a.up, x.Hi, y.Lo), a.F.Div(&a.up, x.Hi, y.Hi),
	}
	return a.hull(los, his)
}

// Sqrt returns the enclosure of sqrt(x); negative parts make the result
// entire (the real sqrt is undefined there).
func (a *Arith) Sqrt(x Interval) Interval {
	if !a.valid(x) || a.F.SignBit(x.Lo) && !a.F.IsZero(x.Lo) {
		return a.Entire()
	}
	return Interval{
		Lo: a.F.Sqrt(&a.down, x.Lo),
		Hi: a.F.Sqrt(&a.up, x.Hi),
	}
}

// hull returns [min(los), max(his)], treating NaN corners as entire.
func (a *Arith) hull(los, his []uint64) Interval {
	var e ieee754.Env
	lo, hi := los[0], his[0]
	for _, v := range los[1:] {
		if a.F.IsNaN(v) {
			return a.Entire()
		}
		if a.F.Lt(&e, v, lo) {
			lo = v
		}
	}
	if a.F.IsNaN(los[0]) || a.F.IsNaN(his[0]) {
		return a.Entire()
	}
	for _, v := range his[1:] {
		if a.F.IsNaN(v) {
			return a.Entire()
		}
		if a.F.Gt(&e, v, hi) {
			hi = v
		}
	}
	return Interval{lo, hi}
}

// String renders the interval.
func (a *Arith) String(x Interval) string {
	return fmt.Sprintf("[%s, %s]", a.F.String(x.Lo), a.F.String(x.Hi))
}

// EvalExpr evaluates an expression tree over intervals, binding each
// variable to an interval. The result encloses every possible real
// evaluation with inputs drawn from the bound intervals (conservatively:
// interval dependency effects widen, never narrow).
func (a *Arith) EvalExpr(n expr.Node, vars map[string]Interval) Interval {
	switch t := n.(type) {
	case expr.Lit:
		return a.FromFloat64(t.V)
	case expr.Var:
		if iv, ok := vars[t.Name]; ok {
			return iv
		}
		return a.Entire()
	case expr.Unary:
		x := a.EvalExpr(t.X, vars)
		switch t.Op {
		case expr.OpNeg:
			return a.Neg(x)
		case expr.OpSqrt:
			return a.Sqrt(x)
		}
	case expr.Binary:
		x := a.EvalExpr(t.X, vars)
		y := a.EvalExpr(t.Y, vars)
		switch t.Op {
		case expr.OpAdd:
			return a.Add(x, y)
		case expr.OpSub:
			return a.Sub(x, y)
		case expr.OpMul:
			return a.Mul(x, y)
		case expr.OpDiv:
			return a.Div(x, y)
		}
	case expr.FMA:
		// Conservative: evaluate as mul then add.
		p := a.Mul(a.EvalExpr(t.X, vars), a.EvalExpr(t.Y, vars))
		return a.Add(p, a.EvalExpr(t.Z, vars))
	}
	return a.Entire()
}

// RelativeWidth returns Width / max(|Lo|, |Hi|) as a float64, a scale-
// free suspicion score for a computed enclosure (0 = exactly known,
// +Inf = unbounded).
func (a *Arith) RelativeWidth(x Interval) float64 {
	if !a.valid(x) {
		return 1
	}
	if a.F.IsInf(x.Lo, 0) || a.F.IsInf(x.Hi, 0) {
		return math.Inf(1) // unbounded enclosure
	}
	w := a.F.ToFloat64(a.Width(x))
	lo, hi := a.F.ToFloat64(x.Lo), a.F.ToFloat64(x.Hi)
	m := lo
	if m < 0 {
		m = -m
	}
	if h := abs(hi); h > m {
		m = h
	}
	if m == 0 {
		return w // absolute width near zero
	}
	return w / m
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
