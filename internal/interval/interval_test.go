package interval

import (
	"math"
	"math/rand"
	"testing"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

var f64 = ieee754.Binary64

func iv(t *testing.T, a *Arith, lo, hi float64) Interval {
	t.Helper()
	var e ieee754.Env
	return Interval{f64.FromFloat64(&e, lo), f64.FromFloat64(&e, hi)}
}

func TestBasicOps(t *testing.T) {
	a := New(f64)
	x := iv(t, a, 1, 2)
	y := iv(t, a, 3, 4)
	sum := a.Add(x, y)
	if f64.ToFloat64(sum.Lo) > 4 || f64.ToFloat64(sum.Hi) < 6 {
		t.Fatalf("sum %s", a.String(sum))
	}
	diff := a.Sub(x, y)
	if f64.ToFloat64(diff.Lo) > -3 || f64.ToFloat64(diff.Hi) < -1 {
		t.Fatalf("diff %s", a.String(diff))
	}
	prod := a.Mul(iv(t, a, -2, 3), iv(t, a, -5, 4))
	// corners: 10, -8, -15, 12 -> [-15, 12]
	if f64.ToFloat64(prod.Lo) > -15 || f64.ToFloat64(prod.Hi) < 12 {
		t.Fatalf("prod %s", a.String(prod))
	}
	q := a.Div(iv(t, a, 1, 2), iv(t, a, 4, 8))
	if f64.ToFloat64(q.Lo) > 0.125 || f64.ToFloat64(q.Hi) < 0.5 {
		t.Fatalf("quot %s", a.String(q))
	}
	s := a.Sqrt(iv(t, a, 4, 9))
	if f64.ToFloat64(s.Lo) > 2 || f64.ToFloat64(s.Hi) < 3 {
		t.Fatalf("sqrt %s", a.String(s))
	}
}

func TestDivByZeroIntervalIsEntire(t *testing.T) {
	a := New(f64)
	q := a.Div(iv(t, a, 1, 2), iv(t, a, -1, 1))
	if !a.IsEntire(q) {
		t.Fatalf("div through zero: %s", a.String(q))
	}
	if !a.IsEntire(a.Sqrt(iv(t, a, -1, 1))) {
		t.Fatal("sqrt of mixed-sign interval should be entire")
	}
}

func TestDirectedRoundingTightness(t *testing.T) {
	// [0.1, 0.1] + [0.2, 0.2]: the enclosure must contain the real 0.3
	// and be at most a few ulps wide.
	a := New(f64)
	x := a.FromFloat64(0.1)
	y := a.FromFloat64(0.2)
	s := a.Add(x, y)
	if f64.ToFloat64(s.Lo) > 0.3 || f64.ToFloat64(s.Hi) < 0.3 {
		t.Fatalf("0.3 not enclosed: %s", a.String(s))
	}
	if w := f64.ToFloat64(a.Width(s)); w > 1e-15 {
		t.Fatalf("width %g too wide", w)
	}
}

// Fundamental containment property: evaluating an expression at any
// point inside the input intervals lands inside the interval result.
func TestContainmentProperty(t *testing.T) {
	a := New(f64)
	rng := rand.New(rand.NewSource(17))
	exprs := []string{
		"x + y", "x - y", "x*y", "x/y", "sqrt(x*x + y*y)",
		"(x + y)*(x - y)", "x*y + x", "1/(1 + x*x)",
	}
	for _, src := range exprs {
		n := expr.MustParse(src)
		for trial := 0; trial < 500; trial++ {
			// Random interval bounds.
			c1 := rng.NormFloat64() * 10
			c2 := c1 + rng.Float64()*3
			d1 := rng.NormFloat64() * 10
			d2 := d1 + rng.Float64()*3
			var e ieee754.Env
			vars := map[string]Interval{
				"x": {f64.FromFloat64(&e, c1), f64.FromFloat64(&e, c2)},
				"y": {f64.FromFloat64(&e, d1), f64.FromFloat64(&e, d2)},
			}
			res := a.EvalExpr(n, vars)
			// Sample points inside.
			for s := 0; s < 10; s++ {
				px := c1 + rng.Float64()*(c2-c1)
				py := d1 + rng.Float64()*(d2-d1)
				var fe ieee754.Env
				point := expr.Eval(f64, &fe, n, expr.Env{
					"x": f64.FromFloat64(&fe, px),
					"y": f64.FromFloat64(&fe, py),
				})
				if f64.IsNaN(point) {
					continue
				}
				if !a.Contains(res, point) {
					t.Fatalf("%q: point %v at (x=%v, y=%v) outside %s",
						src, f64.ToFloat64(point), px, py, a.String(res))
				}
			}
		}
	}
}

func TestCancellationWidensRelatively(t *testing.T) {
	// (x + 1) - x for x = 1e16 (beyond 2^53, so x+1 rounds): the
	// interval result is absolutely narrow but relatively enormous
	// compared to the true value 1 — the interval version of
	// catastrophic cancellation detection.
	a := New(f64)
	n := expr.MustParse("(x + 1) - x")
	var e ieee754.Env
	vars := map[string]Interval{
		"x": a.Point(f64.FromFloat64(&e, 1e16)),
	}
	res := a.EvalExpr(n, vars)
	if !a.Contains(res, f64.FromFloat64(&e, 1)) {
		t.Fatalf("1 not enclosed: %s", a.String(res))
	}
	if rw := a.RelativeWidth(res); rw < 0.05 {
		t.Fatalf("cancellation not flagged: relative width %g", rw)
	}
	// A benign computation stays relatively tight.
	benign := a.EvalExpr(expr.MustParse("x*x"), map[string]Interval{
		"x": a.FromFloat64(3.0),
	})
	if rw := a.RelativeWidth(benign); rw > 1e-12 {
		t.Fatalf("benign computation wide: %g", rw)
	}
}

func TestEntirePropagation(t *testing.T) {
	a := New(f64)
	ent := a.Entire()
	x := a.FromFloat64(1)
	if !a.IsEntire(a.Add(ent, x)) || !a.IsEntire(a.Mul(ent, x)) {
		t.Fatal("entire should propagate")
	}
	// Unbound variable evaluates to entire.
	res := a.EvalExpr(expr.MustParse("q + 1"), nil)
	if !a.IsEntire(res) {
		t.Fatalf("unbound: %s", a.String(res))
	}
	// NaN endpoint -> entire behaviour.
	bad := Interval{f64.QNaN(), f64.FromFloat64(&ieee754.Env{}, 1)}
	if !a.IsEntire(a.Add(bad, x)) {
		t.Fatal("NaN interval should degrade to entire")
	}
}

func TestWidthAndNeg(t *testing.T) {
	a := New(f64)
	x := iv(t, a, -2, 5)
	if got := f64.ToFloat64(a.Width(x)); got != 7 {
		t.Fatalf("width %v", got)
	}
	nx := a.Neg(x)
	if f64.ToFloat64(nx.Lo) != -5 || f64.ToFloat64(nx.Hi) != 2 {
		t.Fatalf("neg %s", a.String(nx))
	}
	if !math.IsInf(f64.ToFloat64(a.Width(a.Entire())), 1) {
		t.Fatal("entire width")
	}
}

func TestIntervalInBinary32(t *testing.T) {
	a := New(ieee754.Binary32)
	x := a.FromFloat64(0.1)
	// binary32 can't represent 0.1; the interval still encloses it and
	// is wider than the binary64 one.
	lo := ieee754.Binary32.ToFloat64(x.Lo)
	hi := ieee754.Binary32.ToFloat64(x.Hi)
	if !(lo <= 0.1 && 0.1 <= hi) {
		t.Fatalf("binary32 0.1 interval [%v, %v]", lo, hi)
	}
	if hi == lo {
		t.Fatal("0.1 exactly representable in binary32!?")
	}
}
