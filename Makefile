# Development entry points. `make check` is the full verification gate
# (build + vet + race-enabled tests); CI and pre-commit should run it.

GO ?= go

.PHONY: check build test bench bench-mem bench-pipeline telemetry-smoke trace-smoke io-smoke query-smoke slo-smoke stat-smoke dist-smoke bench-gate profile

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Memory gate: fails if the per-respondent sampling, calibration, or
# grading inner loops allocate (the Test*ZeroAlloc tests assert the
# contracts via testing.AllocsPerRun), then prints the allocation
# profile of the per-stage hot-path benchmarks. CHECK_BENCH_MEM=1
# make check runs this as part of the full gate.
bench-mem:
	$(GO) test -run 'ZeroAlloc' -v ./internal/respondent/ ./internal/quiz/
	$(GO) test -run - -bench 'BenchmarkSampleBlock|BenchmarkScoreColumns|BenchmarkCalibrateModels|BenchmarkSampleResponses' \
		-benchmem ./internal/respondent/ ./internal/quiz/

# End-to-end pipeline timing; writes BENCH_pipeline.json.
bench-pipeline:
	$(GO) run ./cmd/fpbench -o BENCH_pipeline.json

# End-to-end check of the live-introspection surface: runs fpgen with
# -telemetry and asserts /debug/vars serves live fpstudy metrics.
telemetry-smoke:
	$(GO) run scripts/telemetry_smoke.go

# End-to-end check of the tracing surface: generates n=199 with -trace
# and validates the Chrome trace-event JSON (parses, contains all four
# pipeline stages and per-worker lanes).
trace-smoke:
	$(GO) run scripts/trace_smoke.go

# End-to-end check of the dataset file formats: fpgen writes an
# n=10000 cohort as FPDS binary and as row JSON, and `fpreport -data`
# off each file must reproduce the in-process report byte for byte.
# CHECK_IO_SMOKE=1 make check runs this as part of the full gate.
io-smoke:
	$(GO) run scripts/io_smoke.go

# End-to-end check of the ad-hoc query surface: fpgen writes an
# n=10000 cohort in both file formats, and the same expressions must
# print byte-identical tables through `fpreport -query` (in-process,
# loaded JSON, streamed .fpds) and `fpsurvey slice` (both formats).
# CHECK_QUERY_SMOKE=1 make check runs this as part of the full gate.
query-smoke:
	$(GO) run scripts/query_smoke.go

# End-to-end check of the latency observatory: runs fpbench (n=199)
# with -telemetry, scrapes /metrics while it runs, validates the
# Prometheus exposition (parser check: cumulative buckets, +Inf,
# _sum/_count), and asserts the report carries ordered per-stage
# quantile tables. CHECK_SLO_SMOKE=1 make check runs this as part of
# the full gate.
slo-smoke:
	$(GO) run scripts/slo_smoke.go

# End-to-end check of the perf forensics observatory: real fpgen and
# fpbench runs append run-ledger records, a seeded 20% grade-stage
# slowdown must be attributed to run/grade by `fpstat diff`, the red
# `fpbench compare` gate must leave CPU+heap profiles plus a markdown
# forensics report on disk, and `fpstat trend` must render drift over
# a history and ledger that both end in a truncated line.
# CHECK_STAT_SMOKE=1 make check runs this as part of the full gate.
stat-smoke:
	$(GO) run scripts/stat_smoke.go

# End-to-end check of the distributed pipeline: real fpgen and
# fpreport binaries at -distribute=3 must produce byte-identical .fpds
# shards (main and student cohorts) and a byte-identical full report
# (same exit code) versus their single-process runs, and the run
# ledger must record the topology. CHECK_DIST_SMOKE=1 make check runs
# this as part of the full gate.
dist-smoke:
	$(GO) run scripts/dist_smoke.go

# Perf-regression gate: re-times the pipeline at the small/medium
# cohort sizes and compares against the committed BENCH_pipeline.json
# with fpbench compare (default noise bands; appends the fresh run to
# BENCH_history.jsonl). Exits nonzero if throughput, allocations, or GC
# pauses regressed beyond the bands. CHECK_BENCH_GATE=1 make check runs
# this as part of the full gate. Note: compare flags come before the
# positional report paths.
bench-gate:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/fpbench ./cmd/fpbench && \
	$$tmp/fpbench -n 199,10000 -reps 2 -o $$tmp/new.json && \
	$$tmp/fpbench compare -history BENCH_history.jsonl BENCH_pipeline.json $$tmp/new.json

# One-command profiling session: times the n=1M pipeline once with the
# full observability stack and drops every artifact under profiles/ —
# a CPU profile and heap profile (go tool pprof), plus a Chrome
# trace-event file (load in https://ui.perfetto.dev or chrome://tracing;
# see README "Tracing the pipeline"). -io=false keeps the run focused
# on the generation+grading hot path.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/fpbench -n 1000000 -workers 1,0 -reps 1 -io=false \
		-o profiles/BENCH_profile.json \
		-trace profiles/pipeline.trace.json \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profile artifacts in profiles/: inspect with"
	@echo "  go tool pprof -top profiles/cpu.pprof"
	@echo "  go tool pprof -top profiles/heap.pprof"
	@echo "  perfetto/chrome://tracing <- profiles/pipeline.trace.json"
