# Development entry points. `make check` is the full verification gate
# (build + vet + race-enabled tests); CI and pre-commit should run it.

GO ?= go

.PHONY: check build test bench bench-mem bench-pipeline telemetry-smoke trace-smoke io-smoke bench-gate

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Memory gate: fails if the per-respondent sampling or grading inner
# loops allocate (the Test*ZeroAlloc tests assert 0 allocs/op via
# testing.AllocsPerRun), then prints the allocation profile of the hot
# benchmarks. CHECK_BENCH_MEM=1 make check runs this as part of the
# full gate.
bench-mem:
	$(GO) test -run 'ZeroAlloc' -v ./internal/respondent/ ./internal/quiz/
	$(GO) test -run - -bench 'BenchmarkSampleRespondent|BenchmarkScoreColumns' \
		-benchmem ./internal/respondent/ ./internal/quiz/

# End-to-end pipeline timing; writes BENCH_pipeline.json.
bench-pipeline:
	$(GO) run ./cmd/fpbench -o BENCH_pipeline.json

# End-to-end check of the live-introspection surface: runs fpgen with
# -telemetry and asserts /debug/vars serves live fpstudy metrics.
telemetry-smoke:
	$(GO) run scripts/telemetry_smoke.go

# End-to-end check of the tracing surface: generates n=199 with -trace
# and validates the Chrome trace-event JSON (parses, contains all four
# pipeline stages and per-worker lanes).
trace-smoke:
	$(GO) run scripts/trace_smoke.go

# End-to-end check of the dataset file formats: fpgen writes an
# n=10000 cohort as FPDS binary and as row JSON, and `fpreport -data`
# off each file must reproduce the in-process report byte for byte.
# CHECK_IO_SMOKE=1 make check runs this as part of the full gate.
io-smoke:
	$(GO) run scripts/io_smoke.go

# Perf-regression gate: re-times the pipeline at the small/medium
# cohort sizes and compares against the committed BENCH_pipeline.json
# with fpbench compare (default noise bands; appends the fresh run to
# BENCH_history.jsonl). Exits nonzero if throughput, allocations, or GC
# pauses regressed beyond the bands. CHECK_BENCH_GATE=1 make check runs
# this as part of the full gate. Note: compare flags come before the
# positional report paths.
bench-gate:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/fpbench ./cmd/fpbench && \
	$$tmp/fpbench -n 199,10000 -reps 2 -o $$tmp/new.json && \
	$$tmp/fpbench compare -history BENCH_history.jsonl BENCH_pipeline.json $$tmp/new.json
