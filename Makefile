# Development entry points. `make check` is the full verification gate
# (build + vet + race-enabled tests); CI and pre-commit should run it.

GO ?= go

.PHONY: check build test bench bench-mem bench-pipeline telemetry-smoke

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Memory gate: fails if the per-respondent sampling or grading inner
# loops allocate (the Test*ZeroAlloc tests assert 0 allocs/op via
# testing.AllocsPerRun), then prints the allocation profile of the hot
# benchmarks. CHECK_BENCH_MEM=1 make check runs this as part of the
# full gate.
bench-mem:
	$(GO) test -run 'ZeroAlloc' -v ./internal/respondent/ ./internal/quiz/
	$(GO) test -run - -bench 'BenchmarkSampleRespondent|BenchmarkScoreColumns' \
		-benchmem ./internal/respondent/ ./internal/quiz/

# End-to-end pipeline timing; writes BENCH_pipeline.json.
bench-pipeline:
	$(GO) run ./cmd/fpbench -o BENCH_pipeline.json

# End-to-end check of the live-introspection surface: runs fpgen with
# -telemetry and asserts /debug/vars serves live fpstudy metrics.
telemetry-smoke:
	$(GO) run scripts/telemetry_smoke.go
