# Development entry points. `make check` is the full verification gate
# (build + vet + race-enabled tests); CI and pre-commit should run it.

GO ?= go

.PHONY: check build test bench bench-pipeline telemetry-smoke

check:
	sh scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end pipeline timing; writes BENCH_pipeline.json.
bench-pipeline:
	$(GO) run ./cmd/fpbench -o BENCH_pipeline.json

# End-to-end check of the live-introspection surface: runs fpgen with
# -telemetry and asserts /debug/vars serves live fpstudy metrics.
telemetry-smoke:
	$(GO) run scripts/telemetry_smoke.go
