package fpstudy_test

// Integration tests of the public facade: everything a downstream user
// does goes through these entry points.

import (
	"strings"
	"testing"

	"fpstudy"
)

func TestFacadeArithmetic(t *testing.T) {
	var e fpstudy.Env
	a := fpstudy.Binary64.FromFloat64(&e, 0.1)
	b := fpstudy.Binary64.FromFloat64(&e, 0.2)
	sum := fpstudy.Binary64.Add(&e, a, b)
	// Note: Go folds the constant expression 0.1+0.2 exactly (to 0.3
	// rounded once); runtime IEEE addition gives 0.30000000000000004.
	// The softfloat models the runtime, so compare against variables.
	x, y := 0.1, 0.2
	if got := fpstudy.Binary64.ToFloat64(sum); got != x+y {
		t.Fatalf("0.1+0.2 = %v", got)
	}
	if !e.Flags.Has(fpstudy.FlagInexact) {
		t.Fatal("no inexact flag")
	}
	n := fpstudy.N(fpstudy.Binary32, 2)
	if n.Sqrt(&e).Float64() != float64(float32(1.4142135)) {
		t.Logf("sqrt(2) binary32 = %v", n.Sqrt(&e).Float64())
	}
}

func TestFacadeQuizOracles(t *testing.T) {
	core := fpstudy.CoreQuestions()
	if len(core) != 15 {
		t.Fatalf("%d core questions", len(core))
	}
	trueCount := 0
	for _, q := range core {
		if q.Oracle().Holds {
			trueCount++
		}
	}
	// The paper's key has 7 true assertions (commutativity, square,
	// divide-by-zero, both saturations, denormal precision, operation
	// precision) and 8 false ones.
	if trueCount != 7 {
		t.Fatalf("%d true assertions, want 7", trueCount)
	}
	if len(fpstudy.OptQuestions()) != 4 {
		t.Fatal("opt question count")
	}
}

func TestFacadeStudyPipeline(t *testing.T) {
	results := fpstudy.Study{Seed: 11, NMain: 150, NStudent: 40}.Run()
	figs := results.AllFigures()
	if len(figs) != 22 {
		t.Fatalf("%d figures", len(figs))
	}
	claims := results.HeadlineClaims()
	if len(claims) < 10 {
		t.Fatalf("%d claims", len(claims))
	}
	// Scoring via facade.
	tally := fpstudy.ScoreCore(results.Main.Dataset.Responses[0])
	if tally.Total() != 15 {
		t.Fatalf("tally total %d", tally.Total())
	}
}

func TestFacadeComplianceAndMonitor(t *testing.T) {
	n, err := fpstudy.ParseExpr("a*b + c")
	if err != nil {
		t.Fatal(err)
	}
	v := fpstudy.CheckCompliance(fpstudy.Binary64, n, fpstudy.OptForLevel(3), 2000, 5)
	if v.Compliant {
		t.Fatal("-O3 compliant on a*b+c!?")
	}
	vec, changed := fpstudy.VectorizeSum(n, 2)
	if changed {
		t.Fatalf("product vectorized: %v", vec)
	}

	_, rep := fpstudy.MonitorKernel(fpstudy.Binary64, fpstudy.Kernels()[0].Run)
	if rep.TotalOps == 0 {
		t.Fatal("monitor saw nothing")
	}
	tr := fpstudy.NewTracer(fpstudy.FlagDivByZero, 4)
	fpstudy.Binary64.Div(tr.Env(), fpstudy.Binary64.FromFloat64(tr.Env(), 1), 0)
	if len(tr.Entries()) != 1 {
		t.Fatalf("tracer entries: %d", len(tr.Entries()))
	}
}

func TestFacadeShadow(t *testing.T) {
	ctx := fpstudy.NewMPContext(120)
	n, _ := fpstudy.ParseExpr("(a + b) - a")
	var e fpstudy.Env
	rep := ctx.Shadow(fpstudy.Binary64, n, map[string]uint64{
		"a": fpstudy.Binary64.FromFloat64(&e, 1e9),
		"b": fpstudy.Binary64.FromFloat64(&e, 1e-9),
	})
	if rep.FormatValue != 0 {
		t.Fatalf("format value %v", rep.FormatValue)
	}
	if rep.ShadowValue.IsZero() {
		t.Fatal("shadow absorbed too")
	}
	if !strings.Contains(rep.ShadowValue.DecimalString(5), "e-") {
		t.Fatalf("decimal: %s", rep.ShadowValue.DecimalString(5))
	}
}

func TestFacadeInstrument(t *testing.T) {
	ins := fpstudy.Instrument()
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if ins.EstimateMinutes() > 30 {
		t.Fatalf("instrument estimated at %.1f minutes; the paper requires < 30", ins.EstimateMinutes())
	}
	adm := ins.Administer(3, "core", "optimization")
	if err := adm.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndDatasetPipeline(t *testing.T) {
	// The full data path a real deployment uses: generate responses,
	// serialize, deserialize, validate against the instrument,
	// anonymize, flatten, and re-analyze.
	pop := fpstudy.GenerateMain(99, 120)
	ins := fpstudy.Instrument()

	data, err := fpstudy.EncodeDataset(pop.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fpstudy.DecodeDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.ValidateDataset(back); err != nil {
		t.Fatal(err)
	}
	back.Anonymize()
	csv := ins.FlattenCSV(back)
	if lines := strings.Count(csv, "\n"); lines != 121 { // header + 120
		t.Fatalf("CSV lines: %d", lines)
	}
	// Re-score the round-tripped data: identical tallies.
	for i := range pop.Dataset.Responses {
		a := fpstudy.ScoreCore(pop.Dataset.Responses[i])
		b := fpstudy.ScoreCore(back.Responses[i])
		if a != b {
			t.Fatalf("response %d tally changed through serialization", i)
		}
	}
}

func TestFacadeVMTunerLint(t *testing.T) {
	// VM through the facade.
	prog, err := fpstudy.Assemble("t", "loadc 6\nloadc 7\nmul\nret")
	if err != nil {
		t.Fatal(err)
	}
	vm := fpstudy.NewVM(fpstudy.Binary64)
	res, err := vm.Run(prog, nil)
	if err != nil || fpstudy.Binary64.ToFloat64(res) != 42 {
		t.Fatalf("vm: %v %v", res, err)
	}
	if len(fpstudy.VMPrograms()) < 4 {
		t.Fatal("program library")
	}
	// Tuner through the facade.
	n, _ := fpstudy.ParseExpr("(a + b)*(a - b)")
	tr := fpstudy.TunePrecision(n, 200, 3, 0.2)
	if tr.Ops != 3 {
		t.Fatalf("tuner ops: %d", tr.Ops)
	}
	// Lint through the facade.
	bad, _ := fpstudy.ParseExpr("sqrt(a - b)")
	if len(fpstudy.LintExpr(bad)) == 0 {
		t.Fatal("lint missed sqrt-of-difference")
	}
	if len(fpstudy.LintProgram(prog)) != 0 {
		t.Fatal("clean program flagged")
	}
}

func TestFacadeBfloat16(t *testing.T) {
	var e fpstudy.Env
	x := fpstudy.Bfloat16.FromFloat64(&e, 256)
	one := fpstudy.Bfloat16.FromFloat64(&e, 1)
	if r := fpstudy.Bfloat16.Add(&e, x, one); r != x {
		t.Fatal("bfloat16 should absorb 1 at 256")
	}
}
