// Compensated arithmetic: what the "numeric correctness" specialists
// the paper asks about actually do. Error-free transformations compute
// the exact rounding error of each operation (the "Operation Precision"
// quiz fact, made constructive) and compensated algorithms carry that
// error to recover near-double-precision results at working precision.
//
// The demo builds an ill-conditioned summation and dot product, then
// compares naive, Kahan/Neumaier, and Sum2/Dot2 against the exact
// arbitrary-precision answer.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"fpstudy/internal/eft"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/mpfloat"
)

var f64 = ieee754.Binary64

func main() {
	var e ieee754.Env

	// 1. The exact error of a single operation.
	a := f64.FromFloat64(&e, 0.1)
	b := f64.FromFloat64(&e, 0.2)
	s, err := eft.TwoSum(&e, f64, a, b)
	fmt.Println("TwoSum(0.1, 0.2):")
	fmt.Printf("  rounded sum: %s\n", f64.String(s))
	fmt.Printf("  exact error: %s  (a + b == sum + error, exactly)\n", f64.String(err))

	p, perr := eft.TwoProduct(&e, f64, a, b)
	fmt.Println("TwoProduct(0.1, 0.2):")
	fmt.Printf("  rounded product: %s\n", f64.String(p))
	fmt.Printf("  exact error:     %s\n", f64.String(perr))

	// 2. Ill-conditioned summation: huge cancellations around a small
	// true sum.
	rng := rand.New(rand.NewSource(9))
	var xs []uint64
	for i := 0; i < 200; i++ {
		big := math.Ldexp(rng.Float64()+1, 44)
		xs = append(xs,
			f64.FromFloat64(&e, big),
			f64.FromFloat64(&e, -big),
			f64.FromFloat64(&e, rng.Float64()))
	}
	ctx := mpfloat.NewContext(400)
	exact := mpfloat.Zero(false)
	for _, x := range xs {
		exact = ctx.Add(exact, mpfloat.FromBits(f64, x))
	}
	want := exact.Float64()

	naive := f64.ToFloat64(eft.SumNaive(&e, f64, xs))
	neumaier := f64.ToFloat64(eft.SumNeumaier(&e, f64, xs))
	sum2 := f64.ToFloat64(eft.Sum2(&e, f64, xs))

	fmt.Println("\nIll-conditioned sum of 600 terms (exact value", want, "):")
	fmt.Printf("  naive:    %-22g rel err %.2e\n", naive, rel(naive, want))
	fmt.Printf("  neumaier: %-22g rel err %.2e\n", neumaier, rel(neumaier, want))
	fmt.Printf("  sum2:     %-22g rel err %.2e\n", sum2, rel(sum2, want))

	// 3. The same story for dot products.
	n := 100
	vx := make([]uint64, 2*n)
	vy := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		av := math.Ldexp(rng.Float64()+1, 30)
		bv := rng.Float64() + 1
		vx[2*i] = f64.FromFloat64(&e, av)
		vy[2*i] = f64.FromFloat64(&e, bv)
		vx[2*i+1] = f64.FromFloat64(&e, -av)
		vy[2*i+1] = f64.FromFloat64(&e, bv*(1+1e-12))
	}
	exactDot := mpfloat.Zero(false)
	for i := range vx {
		exactDot = ctx.Add(exactDot, ctx.Mul(mpfloat.FromBits(f64, vx[i]), mpfloat.FromBits(f64, vy[i])))
	}
	wantDot := exactDot.Float64()
	naiveDot := f64.ToFloat64(eft.DotNaive(&e, f64, vx, vy))
	dot2 := f64.ToFloat64(eft.Dot2(&e, f64, vx, vy))
	fmt.Println("\nIll-conditioned dot product (exact value", wantDot, "):")
	fmt.Printf("  naive: %-22g rel err %.2e\n", naiveDot, rel(naiveDot, wantDot))
	fmt.Printf("  dot2:  %-22g rel err %.2e\n", dot2, rel(dot2, wantDot))

	fmt.Println("\nThe 200-bit shadow knows the truth to 50 digits:")
	fmt.Printf("  %s\n", exactDot.DecimalString(50))
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
