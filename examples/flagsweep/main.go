// Flag sweep: the executable answer to the paper's optimization quiz.
// For each compiler configuration (-O0 through -O3 and -ffast-math),
// check a set of witness programs for IEEE compliance: the optimized
// evaluation (rewrites plus FTZ/DAZ hardware modes) is compared
// bit-for-bit against the strict evaluation over a mixed input corpus,
// and the first diverging input is printed as a witness.
package main

import (
	"fmt"

	"fpstudy"
)

func main() {
	programs := []string{
		"a*b + c",          // FMA contraction target
		"(a + b) + c",      // reassociation target
		"a/b",              // reciprocal-math target
		"a - a",            // finite-math-only target
		"a*1e-300*1e-10*b", // FTZ/DAZ territory
	}

	configs := []fpstudy.OptConfig{
		fpstudy.OptForLevel(0),
		fpstudy.OptForLevel(1),
		fpstudy.OptForLevel(2),
		fpstudy.OptForLevel(3),
		fpstudy.FastMath(),
	}

	fmt.Println("Compliance sweep: does the configuration preserve IEEE results?")
	fmt.Println("===============================================================")
	fmt.Printf("%-20s", "program")
	for _, c := range configs {
		fmt.Printf("  %-16s", c.Name)
	}
	fmt.Println()

	for _, src := range programs {
		n, err := fpstudy.ParseExpr(src)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s", src)
		for _, cfg := range configs {
			v := fpstudy.CheckCompliance(fpstudy.Binary64, n, cfg, 2000, 7)
			verdict := "compliant"
			if !v.Compliant {
				verdict = "DIVERGES"
			}
			fmt.Printf("  %-16s", verdict)
		}
		fmt.Println()
	}

	// Show one concrete witness in full.
	n, _ := fpstudy.ParseExpr("(a + b) + c")
	v := fpstudy.CheckCompliance(fpstudy.Binary64, n, fpstudy.FastMath(), 2000, 7)
	if !v.Compliant {
		w := v.Witness
		fmt.Println("\nWitness for -ffast-math on (a + b) + c:")
		fmt.Printf("  rewritten to: %s  (passes: %v)\n", v.Transformed.String(), v.PassesApplied)
		for _, name := range []string{"a", "b", "c"} {
			fmt.Printf("  %s = %s\n", name, fpstudy.Binary64.String(w.Inputs[name]))
		}
		fmt.Printf("  strict IEEE result:    %s\n", fpstudy.Binary64.Hex(w.Strict))
		fmt.Printf("  optimized result:      %s\n", fpstudy.Binary64.Hex(w.Optimized))
	}

	fmt.Println("\nConclusion (matches the quiz oracle): -O2 is the highest compliant level;")
	fmt.Println("-O3 contracts a*b+c into fused multiply-add; -ffast-math reassociates,")
	fmt.Println("approximates reciprocals, folds x-x, and flushes subnormals to zero.")
}
