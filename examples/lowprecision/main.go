// Low precision: the trend that motivates the paper — half-precision
// and ML formats spreading beyond science and engineering. Run the same
// computations in binary64, binary32, binary16, and bfloat16 and watch
// what each format trades away:
//
//   - binary16 keeps more precision but overflows at 65504;
//   - bfloat16 keeps binary32's range but only ~2-3 decimal digits;
//   - both absorb moderate addends and saturate far sooner than
//     developers calibrated on doubles expect.
package main

import (
	"fmt"

	"fpstudy"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
)

func main() {
	formats := []fpstudy.Format{
		fpstudy.Binary64, fpstudy.Binary32, fpstudy.Binary16, ieee754.Bfloat16,
	}

	fmt.Println("Format parameters")
	fmt.Println("=================")
	fmt.Printf("%-10s %8s %9s %14s %14s\n", "format", "prec", "emax", "max finite", "min subnormal")
	for _, f := range formats {
		fmt.Printf("%-10s %8d %9d %14.4g %14.4g\n",
			f.Name, f.Precision(), f.Emax(),
			f.ToFloat64(f.MaxFinite(false)), f.ToFloat64(f.MinSubnormal()))
	}

	fmt.Println("\nAbsorption threshold: smallest N with N + 1 == N")
	fmt.Println("=================================================")
	for _, f := range formats {
		var e fpstudy.Env
		one := f.FromFloat64(&e, 1)
		n := one
		two := f.FromFloat64(&e, 2)
		for {
			sum := f.Add(&e, n, one)
			if f.Eq(&e, sum, n) {
				break
			}
			n = f.Mul(&e, n, two)
			if f.IsInf(n, 0) {
				break
			}
		}
		fmt.Printf("  %-10s N = %g\n", f.Name, f.ToFloat64(n))
	}

	fmt.Println("\nThe same kernels, four precisions (exception profile shifts)")
	fmt.Println("=============================================================")
	suite := []fpstudy.Kernel{
		kernels.GrowthOverflow(),
		kernels.SumNaive(2000),
		kernels.ArchimedesPi(15),
		kernels.LogisticMap(1000),
	}
	fmt.Printf("%-16s", "kernel")
	for _, f := range formats {
		fmt.Printf(" %-22s", f.Name)
	}
	fmt.Println()
	for _, k := range suite {
		fmt.Printf("%-16s", k.Name)
		for _, f := range formats {
			res, rep := fpstudy.MonitorKernel(f, k.Run)
			fmt.Printf(" %-12s susp=%d/5  ", f.String(res), rep.SuspicionScore())
		}
		fmt.Println()
	}

	fmt.Println("\nA dot product in ML formats: bfloat16 vs binary16")
	fmt.Println("==================================================")
	ref, _ := fpstudy.MonitorKernel(fpstudy.Binary64, kernels.DotProduct(500, false).Run)
	want := fpstudy.Binary64.ToFloat64(ref)
	for _, f := range []fpstudy.Format{fpstudy.Binary16, ieee754.Bfloat16, fpstudy.Binary32} {
		got, rep := fpstudy.MonitorKernel(f, kernels.DotProduct(500, false).Run)
		v := f.ToFloat64(got)
		fmt.Printf("  %-10s %-14g (binary64 reference %g, rel err %.2e, conditions %v)\n",
			f.Name, v, want, relErr(v, want), rep.Occurred())
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	if want < 0 {
		return d / -want
	}
	return d / want
}
