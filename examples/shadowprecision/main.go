// Shadow precision: the remediation the paper's conclusions call for —
// "a system that would allow code written using floating point to be
// seamlessly compiled to use arbitrary precision" so developers can
// sanity-check their results.
//
// The same expressions are evaluated twice: once in a hardware-like
// format (binary32/binary64 softfloat) and once in 200-bit arbitrary
// precision. Large relative error between the two is the smoking gun
// for cancellation and absorption bugs that produce no NaN, no Inf, and
// no visible exception.
package main

import (
	"fmt"

	"fpstudy"
)

func main() {
	ctx := fpstudy.NewMPContext(200)

	type testCase struct {
		name string
		src  string
		vars map[string]float64
	}
	cases := []testCase{
		{"benign hypot", "sqrt(a*a + b*b)", map[string]float64{"a": 3, "b": 4}},
		{"absorption", "(a + b) - a", map[string]float64{"a": 1e10, "b": 1e-10}},
		{"cancellation", "(a + b)*(a - b) - (a*a - b*b)", map[string]float64{"a": 1e8, "b": 1}},
		{"quadratic root", "(0 - b + sqrt(b*b - 4*a*c))/(2*a)", map[string]float64{"a": 1, "b": 1e8, "c": 1}},
		{"series tail", "a + b + c + d", map[string]float64{"a": 1e16, "b": 1, "c": 1, "d": 1}},
	}

	for _, f := range []fpstudy.Format{fpstudy.Binary32, fpstudy.Binary64} {
		fmt.Printf("\nShadow execution in %s vs 200-bit arbitrary precision\n", f.Name)
		fmt.Println("--------------------------------------------------------------")
		fmt.Printf("%-16s %-22s %-22s %-12s\n", "case", "format result", "shadow result", "rel. error")
		for _, c := range cases {
			n, err := fpstudy.ParseExpr(c.src)
			if err != nil {
				panic(err)
			}
			var env fpstudy.Env
			vars := map[string]uint64{}
			for k, v := range c.vars {
				vars[k] = f.FromFloat64(&env, v)
			}
			rep := ctx.Shadow(f, n, vars)
			rel := rep.RelError.Float64()
			flag := ""
			if rel > 1e-6 {
				flag = "  <-- suspicious"
			}
			fmt.Printf("%-16s %-22g %-22g %-12.2e%s\n",
				c.name, rep.FormatValue, rep.ShadowValue.Float64(), rel, flag)
		}
	}

	fmt.Println("\nThe paranoid-developer mode: evaluate in arbitrary precision outright.")
	third, _ := fpstudy.ParseExpr("1/3")
	n := third
	v := ctx.Shadow(fpstudy.Binary64, n, nil)
	fmt.Printf("1/3 in binary64 = %.20g; at 200 bits the shadow keeps ~60 digits.\n", v.FormatValue)
}
