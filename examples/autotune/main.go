// Autotune: the precision-reduction trend the paper's introduction
// warns about, as a working system. For several expressions, find the
// cheapest per-operation precision assignment that stays within an
// error budget — then show why blind demotion fails (range vs precision
// is exactly the kind of distinction the quiz shows developers miss).
//
// Also runs the interval analyzer on each expression: wide relative
// intervals predict which expressions resist demotion.
package main

import (
	"fmt"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/interval"
	"fpstudy/internal/tuner"
)

func main() {
	exprs := []string{
		"a + b",
		"(a + b)*(a - b)",
		"sqrt(a*a + b*b)",
		"(a - b)/(a + b)",
		"a*b + a*b*a*b",
	}
	tols := []float64{1e-2, 1e-4, 1e-7}

	fmt.Println("Precision auto-tuning (per-operation format assignment)")
	fmt.Println("=======================================================")
	fmt.Printf("%-22s", "expression")
	for _, tol := range tols {
		fmt.Printf("  tol=%-8.0e", tol)
	}
	fmt.Println(" (demoted ops / total)")

	for _, src := range exprs {
		n := expr.MustParse(src)
		corpus := tuner.Corpus(n, 300, 7)
		fmt.Printf("%-22s", src)
		for _, tol := range tols {
			res := tuner.Tune(n, corpus, tol)
			fmt.Printf("  %d/%-9d", res.Demoted, res.Ops)
		}
		fmt.Println()
	}

	fmt.Println("\nWhy you cannot just 'use half everywhere': range vs precision")
	fmt.Println("==============================================================")
	n := expr.MustParse("sqrt(a*a + b*b)")
	var e ieee754.Env
	point := map[string]uint64{
		"a": ieee754.Binary64.FromFloat64(&e, 300),
		"b": ieee754.Binary64.FromFloat64(&e, 400),
	}
	full := ieee754.Binary64.ToFloat64(tuner.EvalMixed(n, point, nil))
	allHalf := tuner.Assignment{}
	for _, p := range tuner.OpPaths(n) {
		allHalf[p] = ieee754.Binary16
	}
	half := ieee754.Binary64.ToFloat64(tuner.EvalMixed(n, point, allHalf))
	allBf := tuner.Assignment{}
	for _, p := range tuner.OpPaths(n) {
		allBf[p] = ieee754.Bfloat16
	}
	bf := ieee754.Binary64.ToFloat64(tuner.EvalMixed(n, point, allBf))
	fmt.Printf("hypot(300, 400): binary64 = %v\n", full)
	fmt.Printf("  all-binary16:  %v   (300^2 = 90000 overflows half's 65504 range)\n", half)
	fmt.Printf("  all-bfloat16:  %v  (range fine, but only ~2-3 significant digits)\n", bf)

	res := tuner.Tune(n, []map[string]uint64{point}, 0.01)
	fmt.Printf("  tuned at 1%%:   %s\n", res.Assignment)

	fmt.Println("\nInterval analysis flags error growth without any reference run")
	fmt.Println("==============================================================")
	// 1000.1 and 1000.09 are both inexact in binary32, so their
	// difference suffers genuine cancellation of representation error.
	a32 := interval.New(ieee754.Binary32)
	for _, src := range exprs {
		n := expr.MustParse(src)
		vars := map[string]interval.Interval{
			"a": a32.FromFloat64(1000.1),
			"b": a32.FromFloat64(1000.09),
		}
		res := a32.EvalExpr(n, vars)
		fmt.Printf("  %-22s rel width %.2e   %s\n",
			src, a32.RelativeWidth(res), a32.String(res))
	}
	fmt.Println("\n(the cancellation-heavy expressions carry relative enclosures")
	fmt.Println("orders of magnitude wider than the benign ones: rigorous,")
	fmt.Println("reference-free suspicion — the interval version of the monitor)")
}
