// Quickstart: run the complete reproduction study at the paper's scale
// (199 developers + 52 students), print the headline table, the score
// histogram, and check the paper's findings against the regenerated
// data — all through the public fpstudy API.
package main

import (
	"fmt"

	"fpstudy"
)

func main() {
	study := fpstudy.DefaultStudy()
	results := study.Run()

	fmt.Println(results.Figure12().String())
	fmt.Println(results.Figure13().String())

	fmt.Println("Headline claims:")
	for _, c := range results.HeadlineClaims() {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", status, c.Name, c.Detail)
	}

	// The answers behind the quiz are derived, not hard-coded: ask the
	// oracle about the question most participants got wrong.
	fmt.Println("\nThe question 77% of developers answered incorrectly:")
	for _, q := range fpstudy.CoreQuestions() {
		if q.ID != "core.divzero" {
			continue
		}
		res := q.Oracle()
		fmt.Printf("  %s\n  assertion is %v: %s\n", q.Snippet, res.Holds, res.Witness)
	}
}
