// Exception audit: the scenario of the paper's suspicion quiz, made
// real. Run scientific kernels (Lorenz, N-body, summations, a hidden
// divide-by-zero) on the softfloat substrate under the exception
// monitor, and report which exceptional conditions occurred and how
// suspicious a well-calibrated developer should be of each run's
// output.
//
// The "hidden-infinity" kernel is the paper's Divide-by-Zero motif: the
// output looks like an ordinary number (zero), and only the monitor
// reveals that a 1/0 happened along the way.
package main

import (
	"fmt"

	"fpstudy"
)

func main() {
	fmt.Println("Floating point exception audit (binary64, IEEE default environment)")
	fmt.Println("====================================================================")
	for _, k := range fpstudy.Kernels() {
		res, rep := fpstudy.MonitorKernel(fpstudy.Binary64, k.Run)
		fmt.Printf("\n--- %s: %s\n", k.Name, k.Description)
		fmt.Printf("output: %s\n", fpstudy.Binary64.String(res))
		fmt.Print(rep.String())
	}

	// The same audit in binary16 shows how reduced precision moves the
	// exception profile: overflow arrives much sooner.
	fmt.Println("\nSame kernels in binary16 (half precision):")
	for _, k := range fpstudy.Kernels() {
		res, rep := fpstudy.MonitorKernel(fpstudy.Binary16, k.Run)
		occurred := rep.Occurred()
		fmt.Printf("  %-18s output=%-12s suspicion=%d/5 conditions=%v\n",
			k.Name, fpstudy.Binary16.String(res), rep.SuspicionScore(), occurred)
	}
}
