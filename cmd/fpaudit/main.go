// Command fpaudit runs the combined floating point audit — static
// lint, monitored evaluation with per-operation attribution, fast-math
// stability, interval enclosure, 200-bit shadow execution, and a
// precision probe — and prints one verdict with the evidence. The
// "low barrier to use" tool of the paper's conclusions.
//
// Usage:
//
//	fpaudit -var a=5 -var b=5 -var c=2 '1/(a - b) + c'
//	fpaudit -var a=1e16 -var b=1 '(a + b) - a'
//	fpaudit -var a=3 -var b=4 'sqrt(a*a + b*b)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fpstudy/internal/audit"
	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
)

type varFlags map[string]float64

func (v varFlags) String() string { return fmt.Sprint(map[string]float64(v)) }
func (v varFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	v[name] = f
	return nil
}

func main() {
	vars := varFlags{}
	flag.Var(vars, "var", "bind a variable, e.g. -var a=1.5 (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fpaudit [-var name=value]... '<expression>'")
		os.Exit(2)
	}
	n, err := expr.Parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpaudit:", err)
		os.Exit(1)
	}
	var e ieee754.Env
	bound := map[string]uint64{}
	for k, v := range vars {
		bound[k] = ieee754.Binary64.FromFloat64(&e, v)
	}
	rep := audit.Run(n, bound)
	fmt.Print(rep.String())
	fmt.Printf("suspicion (1-5): %d\n", rep.SuspicionScore())
	if rep.Verdict == audit.Alarm {
		os.Exit(1)
	}
}
