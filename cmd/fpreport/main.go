// Command fpreport regenerates the paper's figures and headline claims
// from a reproduction study run.
//
// Usage:
//
//	fpreport -all                # print every figure (1-22) and the claims
//	fpreport -fig 14             # one figure
//	fpreport -claims             # headline claims only
//	fpreport -csv -fig 22        # figure as CSV
//	fpreport -n 1000 -seed 7     # larger cohort / different seed
//	fpreport -data big.fpds -all # report off a serialized dataset
//
// Ad-hoc slicing runs a query expression through the vectorized
// engine instead of a canned figure:
//
//	fpreport -query '/bg.formal_training/mean:core.score'
//	fpreport -data big.fpds -query 'susp.invalid>=4/bg.contrib_size/count'
//
// With -data on an .fpds shard the query streams block-at-a-time off
// disk (memory bounded by block size x workers, not n); row JSON and
// generated cohorts run in memory. See internal/query for the
// filter/groupby/agg grammar.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fpstudy/internal/colstore"
	"fpstudy/internal/core"
	"fpstudy/internal/distrib"
	"fpstudy/internal/paperdata"
	"fpstudy/internal/report"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/runlog"
	"fpstudy/internal/telemetry"
)

// ledger is this invocation's run-ledger record (nil when -runlog is
// unset); exit routes every termination through it so the appended
// record carries the real exit status.
var ledger *runlog.Run

func exit(code int) {
	ledger.Finish(code)
	os.Exit(code)
}

func main() {
	// A coordinator re-execs this binary as a frame-protocol worker;
	// the bootstrap intercepts that mode before any flag parsing.
	distrib.WorkerBootstrap()
	all := flag.Bool("all", false, "print all figures and claims")
	fig := flag.Int("fig", 0, "print one figure by number (1-22)")
	claims := flag.Bool("claims", false, "print headline claims")
	calibration := flag.Bool("calibration", false, "print the chi-square calibration report")
	association := flag.Bool("association", false, "print factor-association effect sizes")
	items := flag.Bool("items", false, "print the item analysis of the core quiz")
	intervention := flag.Bool("intervention", false, "print the training-intervention policy experiment")
	confidence := flag.Bool("confidence", false, "print the confidence-vs-accuracy analysis")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	markdown := flag.Bool("markdown", false, "emit Markdown instead of an aligned table")
	n := flag.Int("n", paperdata.NMain, "main cohort size")
	nStudents := flag.Int("nstudents", paperdata.NStudent, "student cohort size")
	seed := flag.Int64("seed", 42, "study seed")
	queryExpr := flag.String("query", "", "run a filter/groupby/agg query expression instead of a figure (streams .fpds -data shards out of core)")
	data := flag.String("data", "", "run the report off a main-cohort dataset file (row JSON or .fpds binary) instead of regenerating")
	studentData := flag.String("studentdata", "", "student-cohort dataset file (with -data; default regenerates students from -seed/-nstudents)")
	workers := flag.Int("workers", 0, "worker goroutines (<=0 means GOMAXPROCS); never affects the data")
	telemetryAddr := flag.String("telemetry", "", "serve live expvar+pprof introspection on this address (e.g. 127.0.0.1:6060)")
	manifest := flag.String("manifest", "", "write a run manifest (seed, workers, stage spans, counters) to this path")
	runlogPath := flag.String("runlog", os.Getenv("FPSTUDY_RUNLOG"), "append a run-ledger record (JSONL) to this file on exit (default $FPSTUDY_RUNLOG; empty disables); never affects the output")
	distribute := flag.Int("distribute", 0, "run generation, grading, and figure rendering across this many worker processes (bit-identical to in-process); 0 runs in-process")
	flag.Parse()

	// Telemetry observes the pipeline without participating: figures
	// and claims are bit-identical with or without it.
	reg := telemetry.NewRegistry()
	rec := core.InstallPipelineTelemetry(reg)
	rec.PublishExpvar("fpstudy")
	ledger = runlog.Start(*runlogPath, "fpreport", os.Args[1:], reg, rec)
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpreport:", err)
			exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort at exit
		}()
		fmt.Fprintf(os.Stderr, "fpreport: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr())
	}

	// ColumnarOnly: every figure, claim, and query evaluates through
	// the vectorized engine straight off the columns, so a reporting
	// invocation never builds per-respondent maps. The analyses that do
	// need row views (calibration, item analysis) materialize them
	// lazily on first use.
	study := core.Study{Seed: *seed, NMain: *n, NStudent: *nStudents, Workers: *workers,
		Telemetry: rec, ColumnarOnly: true}

	if *queryExpr != "" {
		if err := runQuery(study, *data, *queryExpr); err != nil {
			fmt.Fprintln(os.Stderr, "fpreport:", err)
			exit(1)
		}
		ledger.Finish(0)
		return
	}
	var results *core.Results
	// Figures rendered by worker processes in a -distribute run; emit
	// consults this before falling back to the in-process renderer.
	distTables := map[int]report.Table{}
	if *data != "" {
		// Loaded-data mode: grade and report on a serialized cohort. At
		// the generating seed and size this reproduces an in-process run
		// bit-for-bit (the golden test pins it).
		var err error
		results, err = resultsFromFiles(study, reg, *data, *studentData)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpreport:", err)
			exit(1)
		}
	} else {
		if *studentData != "" {
			fmt.Fprintln(os.Stderr, "fpreport: -studentdata requires -data")
			exit(2)
		}
		if *distribute > 0 {
			// Distributed mode: generation, grading, and the figures the
			// invocation will print all run in worker processes; the
			// figure legs round-robin across workers. Output is
			// bit-identical to the in-process run (the golden test pins
			// it), so the flag is pure execution topology.
			figs := wantedFigures(*all, *fig, *claims, *calibration, *association, *items, *intervention, *confidence)
			var err error
			results, distTables, err = distributedRun(study, *distribute, figs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpreport:", err)
				exit(1)
			}
		} else {
			results = study.Run()
		}
	}
	if *manifest != "" {
		m := rec.Manifest("fpreport", *seed, *n, *workers)
		m.Timestamp = time.Now().UTC().Format(time.RFC3339)
		if err := telemetry.WriteManifest(*manifest, m); err != nil {
			fmt.Fprintln(os.Stderr, "fpreport:", err)
			exit(1)
		}
	}

	emit := func(num int) {
		t, ok := distTables[num]
		if !ok {
			t = results.Figure(num)
		}
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *markdown:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}

	switch {
	case *calibration:
		fmt.Println(results.CalibrationReport().String())
	case *association:
		fmt.Println(results.FactorAssociation().String())
	case *items:
		fmt.Println(results.ItemAnalysis().String())
	case *intervention:
		fmt.Println(results.InterventionReport().String())
	case *confidence:
		fmt.Println(results.ConfidenceReport().String())
		fmt.Printf("overconfidence index: %+.3f; optimization humility: %.2f\n",
			results.OverconfidenceIndex(), results.OptHumilityIndex())
	case *fig != 0:
		if *fig < 1 || *fig > 22 {
			fmt.Fprintln(os.Stderr, "fpreport: figure number must be 1-22")
			exit(2)
		}
		emit(*fig)
	case *all:
		for i := 1; i <= 22; i++ {
			emit(i)
		}
		printClaims(results)
	case *claims:
		printClaims(results)
	default:
		// Default: the paper's headline table and histogram.
		emit(12)
		emit(13)
		printClaims(results)
	}
	ledger.Finish(0)
}

// wantedFigures maps the invocation's flags to the figure numbers it
// will print, so a distributed run only ships figure legs that will
// actually be emitted. Analysis flags print no figures at all.
func wantedFigures(all bool, fig int, analysisOnly ...bool) []int {
	for _, a := range analysisOnly {
		if a {
			return nil
		}
	}
	switch {
	case all:
		figs := make([]int, 22)
		for i := range figs {
			figs[i] = i + 1
		}
		return figs
	case fig >= 1 && fig <= 22:
		return []int{fig}
	case fig != 0:
		return nil // invalid number; the caller rejects it before emitting
	default:
		return []int{12, 13} // the headline table and histogram
	}
}

// distributedRun executes the full pipeline — generation, grading,
// and figure rendering — across procs worker processes and assembles
// in-process Results over the merged cohorts for everything else
// (claims, analyses, figures outside figs).
func distributedRun(study core.Study, procs int, figs []int) (*core.Results, map[int]report.Table, error) {
	c, err := distrib.Start(distrib.Options{Procs: procs, Workers: study.Workers, Stderr: os.Stderr})
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	main, err := c.GenerateMain(study.Seed, study.NMain)
	if err != nil {
		return nil, nil, err
	}
	// Same seed split as Study.Run: students draw from Seed+1.
	students, err := c.GenerateStudents(study.Seed+1, study.NStudent)
	if err != nil {
		return nil, nil, err
	}
	g, err := c.Grade()
	if err != nil {
		return nil, nil, err
	}
	results, err := study.ResultsFromParts(main, students, g)
	if err != nil {
		return nil, nil, err
	}
	tables, err := c.Figures(main, students, figs)
	if err != nil {
		return nil, nil, err
	}
	byNum := make(map[int]report.Table, len(figs))
	for i, f := range figs {
		byNum[f] = tables[i]
	}
	st := c.Stats()
	ledger.SetTopology(&runlog.Topology{
		Procs: st.Procs, WorkersPerProc: st.WorkersPerProc, WorkerWallSeconds: st.WorkerWallSeconds})
	if err := c.Close(); err != nil {
		return nil, nil, err
	}
	return results, byNum, nil
}

// runQuery executes one ad-hoc expression through the vectorized
// engine: streaming off an .fpds -data shard (out-of-core), in memory
// off a row-JSON file, or over a freshly generated main cohort.
func runQuery(study core.Study, dataPath, expr string) error {
	schema := quiz.Columns()
	resolve := func(name string) (query.Value, error) { return quiz.QueryValue(schema, name) }
	p, err := query.Parse(schema, expr, resolve)
	if err != nil {
		return err
	}

	var src query.Source
	switch {
	case dataPath == "":
		src = study.Run().MainSource()
	default:
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		head := make([]byte, 8)
		k, _ := f.ReadAt(head, 0)
		if colstore.DetectFormat(head[:k]) == colstore.FormatBinary {
			// Out-of-core: stream blocks of the bound columns only.
			f.Close()
			sr, err := colstore.OpenShard(schema, dataPath, colstore.IOOptions{Workers: study.Workers})
			if err != nil {
				return err
			}
			defer sr.Close()
			fmt.Fprintf(os.Stderr, "fpreport: streaming %s: fpds, %d responses\n", dataPath, sr.Len())
			src = query.NewShardSource(sr)
		} else {
			f.Close()
			cols, info, err := colstore.LoadFile(schema, dataPath, colstore.IOOptions{Workers: study.Workers})
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "fpreport: loaded %s: %s, %d responses, %.1f MB, %.2fs\n",
				dataPath, info.Format, cols.Len(), float64(info.Bytes)/(1<<20), info.Elapsed.Seconds())
			src = query.NewDatasetSource(cols)
		}
	}

	start := time.Now()
	res, err := query.Run(src, p.Query, study.Workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Print(p.Render(res))
	fmt.Fprintf(os.Stderr, "fpreport: scanned %d respondents, selected %d, %.3fs (%.1fM respondents/s)\n",
		src.Len(), res.TotalCount(), elapsed.Seconds(),
		float64(src.Len())/elapsed.Seconds()/1e6)
	return nil
}

// resultsFromFiles loads the main (and optionally student) cohort
// through the format-sniffing columnar loader and builds graded results
// off the columns.
func resultsFromFiles(study core.Study, reg *telemetry.Registry, dataPath, studentPath string) (*core.Results, error) {
	opt := colstore.IOOptions{Workers: study.Workers, BytesRead: reg.Counter(core.MetricIOBytesRead)}
	sp := study.Telemetry.StartSpan("load-data")
	main, info, err := colstore.LoadFile(quiz.Columns(), dataPath, opt)
	if err != nil {
		return nil, err
	}
	sp.AddItems(int64(main.Len()))
	sp.End()
	fmt.Fprintf(os.Stderr, "fpreport: loaded %s: %s, %d responses, %.1f MB, %.2fs\n",
		dataPath, info.Format, main.Len(), float64(info.Bytes)/(1<<20), info.Elapsed.Seconds())
	var students *colstore.Dataset
	if studentPath != "" {
		ssp := study.Telemetry.StartSpan("load-studentdata")
		var sinfo colstore.LoadInfo
		students, sinfo, err = colstore.LoadFile(quiz.Columns(), studentPath, opt)
		if err != nil {
			return nil, err
		}
		ssp.AddItems(int64(students.Len()))
		ssp.End()
		fmt.Fprintf(os.Stderr, "fpreport: loaded %s: %s, %d responses, %.1f MB, %.2fs\n",
			studentPath, sinfo.Format, students.Len(), float64(sinfo.Bytes)/(1<<20), sinfo.Elapsed.Seconds())
	}
	return study.ResultsFromColumns(main, students)
}

func printClaims(results *core.Results) {
	fmt.Println("Headline claims (Section IV)")
	fmt.Println("============================")
	ok := true
	for _, c := range results.HeadlineClaims() {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("  [%s] %-34s %s\n", status, c.Name, c.Detail)
	}
	if !ok {
		exit(1)
	}
}
