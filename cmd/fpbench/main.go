// Command fpbench times the end-to-end study pipeline (generation +
// grading) across cohort sizes and worker counts and emits a
// machine-readable JSON report, so performance changes can be tracked
// across commits and machines.
//
// Usage:
//
//	fpbench -o BENCH_pipeline.json
//	fpbench -n 199,10000 -workers 1,2,4 -reps 3
//	fpbench -telemetry 127.0.0.1:6060    # live /debug/vars + pprof while timing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fpstudy/internal/core"
	"fpstudy/internal/telemetry"
)

// schemaVersion is the BENCH_pipeline.json document version.
//
// History:
//
//	1 (implicit, field absent) — tool/timestamp/seed/host/runs with
//	  per-run best_seconds, respondents_per_sec, speedup_vs_serial.
//	2 — adds "schema_version" itself and per-run "spans": the stage
//	  span breakdown (generate-main / generate-students / calibrate /
//	  grade, with per-stage seconds, items, items/sec) of the best rep.
//	3 — "speedup_vs_serial" is omitted (instead of a meaningless 0)
//	  when no workers=1 baseline was timed for the same n; adds per-run
//	  memory statistics from runtime.ReadMemStats deltas over the best
//	  rep: "allocs_per_respondent", "total_alloc_mb" (MiB),
//	  "gc_pause_total_ms", "gc_count". The pipeline is timed
//	  ColumnarOnly (columnar generation + grading, no row-view
//	  materialization) — the configuration large cohorts run.
const schemaVersion = 3

// host identifies the benchmarking machine.
type host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// run is one timed pipeline execution configuration.
type run struct {
	N                 int     `json:"n"`
	Workers           int     `json:"workers"`
	Reps              int     `json:"reps"`
	BestSeconds       float64 `json:"best_seconds"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
	// SpeedupVsSerial compares against the workers=1 run of the same n
	// (1.0 when this is that run). It is omitted entirely when no
	// workers=1 baseline was timed for this n — a missing baseline is
	// not a measurement of 0.
	SpeedupVsSerial *float64 `json:"speedup_vs_serial,omitempty"`
	// Memory statistics: runtime.ReadMemStats deltas over the best rep.
	AllocsPerRespondent float64 `json:"allocs_per_respondent"`
	TotalAllocMB        float64 `json:"total_alloc_mb"`
	GCPauseTotalMS      float64 `json:"gc_pause_total_ms"`
	GCCount             uint32  `json:"gc_count"`
	// Spans is the stage breakdown of the best (fastest) rep, so slow
	// stages can be attributed without rerunning under a profiler.
	Spans []telemetry.SpanSnapshot `json:"spans"`
}

// report is the BENCH_pipeline.json document.
type report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Timestamp     string `json:"timestamp"`
	Seed          int64  `json:"seed"`
	Host          host   `json:"host"`
	Runs          []run  `json:"runs"`
}

// memDelta captures the runtime.MemStats movement across one rep.
type memDelta struct {
	allocs     uint64
	allocBytes uint64
	gcPause    uint64
	gcCount    uint32
}

func parseInts(s, flagName string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -%s value %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	ns := flag.String("n", "199,10000", "comma-separated cohort sizes")
	ws := flag.String("workers", "1,0", "comma-separated worker counts (0 means GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per configuration (best time is reported)")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("o", "BENCH_pipeline.json", "output file (- for stdout); also writes <out>.manifest.json")
	telemetryAddr := flag.String("telemetry", "", "serve live expvar+pprof introspection on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	sizes := parseInts(*ns, "n")
	var workerCounts []int
	for _, part := range strings.Split(*ws, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -workers value %q\n", part)
			os.Exit(2)
		}
		workerCounts = append(workerCounts, v)
	}

	// One registry accumulates across every rep (it feeds /debug/vars
	// and the manifest); span recorders are per-rep so each run's stage
	// breakdown is isolated. The benchmark numbers include the
	// instrumented pipeline — that is the configuration users run.
	reg := telemetry.NewRegistry()
	core.InstallPipelineTelemetry(reg)
	procRec := telemetry.NewRecorder(reg)
	procRec.PublishExpvar("fpstudy")
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fpbench: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr())
	}

	rep := report{
		SchemaVersion: schemaVersion,
		Tool:          "fpbench",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Seed:          *seed,
		Host: host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	for _, n := range sizes {
		serial := 0.0
		for _, w := range workerCounts {
			best := 0.0
			var bestSpans []telemetry.SpanSnapshot
			var bestMem memDelta
			for r := 0; r < *reps; r++ {
				rec := telemetry.NewRecorder(reg)
				// ColumnarOnly: the benchmark times the columnar pipeline
				// (generation into columns + columnar grading), which is
				// what large cohorts run; row-view materialization is a
				// separate, optional cost.
				study := core.Study{Seed: *seed, NMain: n, NStudent: 52, Workers: w,
					Telemetry: rec, ColumnarOnly: true}
				// A forced GC before sampling makes the per-rep memory
				// deltas comparable (no carry-over garbage).
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				start := time.Now()
				res := study.Run()
				sec := time.Since(start).Seconds()
				runtime.ReadMemStats(&after)
				if len(res.CoreTallies) != n {
					fmt.Fprintf(os.Stderr, "fpbench: run produced %d tallies, want %d\n", len(res.CoreTallies), n)
					os.Exit(1)
				}
				if best == 0 || sec < best {
					best = sec
					bestSpans = rec.Spans()
					bestMem = memDelta{
						allocs:     after.Mallocs - before.Mallocs,
						allocBytes: after.TotalAlloc - before.TotalAlloc,
						gcPause:    after.PauseTotalNs - before.PauseTotalNs,
						gcCount:    after.NumGC - before.NumGC,
					}
				}
			}
			if w == 1 {
				serial = best
			}
			var speedup *float64
			if serial > 0 {
				v := serial / best
				speedup = &v
			}
			rep.Runs = append(rep.Runs, run{
				N: n, Workers: w, Reps: *reps,
				BestSeconds:         best,
				RespondentsPerSec:   float64(n) / best,
				SpeedupVsSerial:     speedup,
				AllocsPerRespondent: float64(bestMem.allocs) / float64(n),
				TotalAllocMB:        float64(bestMem.allocBytes) / (1 << 20),
				GCPauseTotalMS:      float64(bestMem.gcPause) / 1e6,
				GCCount:             bestMem.gcCount,
				Spans:               bestSpans,
			})
			fmt.Fprintf(os.Stderr, "fpbench: n=%d workers=%d best=%.3fs (%.0f respondents/sec, %.1f allocs/respondent, %d GCs)\n",
				n, w, best, float64(n)/best, float64(bestMem.allocs)/float64(n), bestMem.gcCount)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
	m := procRec.Manifest("fpbench", *seed, 0, 0)
	m.Timestamp = rep.Timestamp
	mpath := telemetry.ManifestPath(*out)
	if err := telemetry.WriteManifest(mpath, m); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fpbench: wrote %s (manifest %s)\n", *out, mpath)
}
