// Command fpbench times the end-to-end study pipeline (generation +
// grading) across cohort sizes and worker counts and emits a
// machine-readable JSON report, so performance changes can be tracked
// across commits and machines.
//
// Usage:
//
//	fpbench -o BENCH_pipeline.json
//	fpbench -n 199,10000 -workers 1,2,4 -reps 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fpstudy/internal/core"
)

// host identifies the benchmarking machine.
type host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// run is one timed pipeline execution configuration.
type run struct {
	N                 int     `json:"n"`
	Workers           int     `json:"workers"`
	Reps              int     `json:"reps"`
	BestSeconds       float64 `json:"best_seconds"`
	RespondentsPerSec float64 `json:"respondents_per_sec"`
	// SpeedupVsSerial compares against the workers=1 run of the same n
	// (1.0 when this is that run; 0 when no workers=1 run was timed).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// report is the BENCH_pipeline.json document.
type report struct {
	Tool      string `json:"tool"`
	Timestamp string `json:"timestamp"`
	Seed      int64  `json:"seed"`
	Host      host   `json:"host"`
	Runs      []run  `json:"runs"`
}

func parseInts(s, flagName string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -%s value %q\n", flagName, part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	ns := flag.String("n", "199,10000", "comma-separated cohort sizes")
	ws := flag.String("workers", "1,0", "comma-separated worker counts (0 means GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per configuration (best time is reported)")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("o", "BENCH_pipeline.json", "output file (- for stdout)")
	flag.Parse()

	sizes := parseInts(*ns, "n")
	var workerCounts []int
	for _, part := range strings.Split(*ws, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -workers value %q\n", part)
			os.Exit(2)
		}
		workerCounts = append(workerCounts, v)
	}

	rep := report{
		Tool:      "fpbench",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Seed:      *seed,
		Host: host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	for _, n := range sizes {
		serial := 0.0
		for _, w := range workerCounts {
			study := core.Study{Seed: *seed, NMain: n, NStudent: 52, Workers: w}
			best := 0.0
			for r := 0; r < *reps; r++ {
				start := time.Now()
				res := study.Run()
				sec := time.Since(start).Seconds()
				if len(res.CoreTallies) != n {
					fmt.Fprintf(os.Stderr, "fpbench: run produced %d tallies, want %d\n", len(res.CoreTallies), n)
					os.Exit(1)
				}
				if best == 0 || sec < best {
					best = sec
				}
			}
			if w == 1 {
				serial = best
			}
			speedup := 0.0
			if serial > 0 {
				speedup = serial / best
			}
			rep.Runs = append(rep.Runs, run{
				N: n, Workers: w, Reps: *reps,
				BestSeconds:       best,
				RespondentsPerSec: float64(n) / best,
				SpeedupVsSerial:   speedup,
			})
			fmt.Fprintf(os.Stderr, "fpbench: n=%d workers=%d best=%.3fs (%.0f respondents/sec)\n",
				n, w, best, float64(n)/best)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fpbench: wrote %s\n", *out)
}
