// Command fpbench times the end-to-end study pipeline (generation +
// grading) across cohort sizes and worker counts and emits a
// machine-readable JSON report, so performance changes can be tracked
// across commits and machines. Each size also gets an io section:
// dataset serialization through real files (FPDS binary and JSON,
// encode and decode, plus the legacy row decoder as the json-rows
// baseline), reported as MB/s and respondents/sec. Its compare mode
// diffs two reports against noise bands and maintains the
// BENCH_history.jsonl trajectory — the perf-regression gate
// `make bench-gate` runs.
//
// Usage:
//
//	fpbench -o BENCH_pipeline.json
//	fpbench -n 199,10000 -workers 1,2,4 -reps 3
//	fpbench -io=false                    # skip the serialization benchmarks
//	fpbench -telemetry 127.0.0.1:6060    # live /debug/vars + pprof while timing
//	fpbench -trace out.trace.json        # export a Chrome/Perfetto trace of the timed reps
//	fpbench -cpuprofile cpu.pprof -memprofile heap.pprof  # profile the timed reps
//	fpbench compare old.json new.json    # exit 1 if new regressed beyond the noise bands
//
// The default -workers sweep is 1,2,4,0 (0 = GOMAXPROCS), recording the
// full scaling curve per cohort size. compare additionally gates the
// new report's own scaling: workers=0 must be at least as fast as
// workers=1 at every n, within the throughput band. On a GOMAXPROCS=1
// host every worker count clamps to serial; fpbench warns loudly and
// tags the report "serial_host": true.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"fpstudy/internal/benchcmp"
	"fpstudy/internal/colstore"
	"fpstudy/internal/core"
	"fpstudy/internal/distrib"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
	"fpstudy/internal/runlog"
	"fpstudy/internal/survey"
	"fpstudy/internal/telemetry"
)

// ledger is this invocation's run-ledger record (nil when -runlog is
// unset); exit routes every termination through it so the appended
// record carries the real exit status.
var ledger *runlog.Run

func exit(code int) {
	ledger.Finish(code)
	os.Exit(code)
}

// memDelta captures the runtime.MemStats movement across one rep.
type memDelta struct {
	allocs     uint64
	allocBytes uint64
	gcPause    uint64
	gcCount    uint32
}

func parseInts(s, flagName string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -%s value %q\n", flagName, part)
			exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	// The distrib benchmark re-execs this binary as a frame-protocol
	// worker; the bootstrap intercepts that mode before anything else.
	distrib.WorkerBootstrap()
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		exit(compareMain(os.Args[2:]))
	}
	benchMain()
	ledger.Finish(0)
}

// compareMain implements `fpbench compare [flags] old.json new.json`:
// diff two benchmark reports against noise bands, append the new run
// to the benchmark trajectory, exit 1 on regression (2 on usage or
// I/O errors). Flags come before the positional report paths (Go flag
// parsing stops at the first non-flag argument).
func compareMain(args []string) int {
	fs := flag.NewFlagSet("fpbench compare", flag.ExitOnError)
	throughputBand := fs.Float64("throughput-band", 0, "tolerated relative throughput drop (default 0.05 = 5%)")
	allocsBand := fs.Float64("allocs-band", 0, "tolerated relative allocs/respondent growth (default 0.10)")
	gcBand := fs.Float64("gc-band", 0, "tolerated relative GC-pause growth (default 0.50)")
	latencyBand := fs.Float64("latency-band", 0, "tolerated relative per-stage p99 latency growth (default 0.25)")
	history := fs.String("history", "BENCH_history.jsonl", "benchmark trajectory to append the new run to (empty disables)")
	forensics := fs.String("forensics", "forensics", "on gate failure, write a stage-attribution report plus CPU+heap profiles of the worst regressed leg into this directory (empty disables)")
	runlogPath := fs.String("runlog", os.Getenv("FPSTUDY_RUNLOG"), "append a run-ledger record (JSONL) to this file on exit (default $FPSTUDY_RUNLOG; empty disables)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fpbench compare [flags] old.json new.json")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ledger = runlog.Start(*runlogPath, "fpbench", os.Args[1:], nil, nil)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := benchcmp.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench compare:", err)
		return 2
	}
	cur, err := benchcmp.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench compare:", err)
		return 2
	}

	res := benchcmp.Compare(old, cur, benchcmp.Bands{
		Throughput: *throughputBand,
		Allocs:     *allocsBand,
		GCPause:    *gcBand,
		LatencyP99: *latencyBand,
	})
	for _, d := range res.Deltas {
		mark := "ok"
		if d.Regression {
			mark = "REGRESSION"
		}
		fmt.Fprintf(os.Stderr, "fpbench compare: %-28s %-22s %12.3f -> %12.3f (%+.1f%%) %s\n",
			d.Config(), d.Metric, d.Old, d.New, 100*d.Change, mark)
	}
	for _, c := range res.OnlyOld {
		fmt.Fprintf(os.Stderr, "fpbench compare: %s only in %s (not gated)\n", c, fs.Arg(0))
	}
	for _, c := range res.OnlyNew {
		fmt.Fprintf(os.Stderr, "fpbench compare: %s only in %s (not gated)\n", c, fs.Arg(1))
	}

	if *history != "" {
		if err := benchcmp.AppendHistory(*history, cur, time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "fpbench compare:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "fpbench compare: appended run to %s\n", *history)
	}

	if regs := res.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "fpbench compare: %d regression(s) beyond the noise bands\n", len(regs))
		if *forensics != "" {
			captureForensics(*forensics, old, cur, fs.Arg(0), fs.Arg(1), res)
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "fpbench compare: no regressions")
	return 0
}

// worstRegressedLeg picks the pipeline (n, workers) configuration with
// the largest relative regression — the leg worth re-running under a
// profiler. IO and query deltas are skipped: they run different code
// paths than the pipeline re-run would profile.
func worstRegressedLeg(regs []benchcmp.Delta) (n, w int, ok bool) {
	worst := 0.0
	for _, d := range regs {
		if d.IsIO() || d.IsQuery() || d.IsDistrib() || d.N == 0 {
			continue
		}
		mag := d.Change
		if mag < 0 {
			mag = -mag
		}
		if !ok || mag > worst {
			worst, n, w, ok = mag, d.N, d.Workers, true
		}
	}
	return n, w, ok
}

// captureForensics is the gate-failure autopsy: it writes a markdown
// report attributing the regression to stages (self-time diff of the
// two reports' span trees) into dir, and — when a pipeline leg
// regressed — re-runs that leg once under CPU and heap profiling so
// the culprit stage can be drilled into with `go tool pprof`. Failures
// here only warn: the gate's exit status is already decided.
func captureForensics(dir string, old, cur *benchcmp.Report, oldPath, newPath string, res *benchcmp.Result) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench compare: forensics:", err)
		return
	}
	profiles := map[string]string{}
	if n, w, ok := worstRegressedLeg(res.Regressions()); ok {
		fmt.Fprintf(os.Stderr, "fpbench compare: forensics: re-running worst leg n=%d workers=%d under profiler\n", n, w)
		cpuPath := filepath.Join(dir, "cpu.pprof")
		heapPath := filepath.Join(dir, "heap.pprof")
		if err := profileLeg(cpuPath, heapPath, cur.Seed, n, w); err != nil {
			fmt.Fprintln(os.Stderr, "fpbench compare: forensics:", err)
		} else {
			profiles["cpu"] = cpuPath
			profiles["heap"] = heapPath
		}
	}
	md := benchcmp.ForensicsMarkdown(old, cur, oldPath, newPath, res, profiles, time.Now())
	mdPath := filepath.Join(dir, "forensics.md")
	if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench compare: forensics:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "fpbench compare: forensics report %s\n", mdPath)
}

// profileLeg re-runs one pipeline configuration under CPU profiling
// and snapshots the heap afterwards — the same instrumented,
// columnar-only study the benchmark timed, primed so the one-time
// answer-key derivation stays out of the profile.
func profileLeg(cpuPath, heapPath string, seed int64, n, w int) error {
	reg := telemetry.NewRegistry()
	rec := core.InstallPipelineTelemetry(reg)
	defer core.UninstallPipelineTelemetry()
	core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: 1, ColumnarOnly: true}.Run()

	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	if seed == 0 {
		seed = 42
	}
	core.Study{Seed: seed, NMain: n, NStudent: 52, Workers: w,
		Telemetry: rec, ColumnarOnly: true}.Run()
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		return err
	}

	hf, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	runtime.GC() // up-to-date heap statistics
	if err := pprof.WriteHeapProfile(hf); err != nil {
		hf.Close()
		return err
	}
	return hf.Close()
}

func benchMain() {
	ns := flag.String("n", "199,10000", "comma-separated cohort sizes")
	ws := flag.String("workers", "1,2,4,0", "comma-separated worker counts (0 means GOMAXPROCS)")
	reps := flag.Int("reps", 3, "repetitions per configuration (best time is reported)")
	seed := flag.Int64("seed", 42, "study seed")
	out := flag.String("o", "BENCH_pipeline.json", "output file (- for stdout); also writes <out>.manifest.json")
	force := flag.Bool("force", false, "overwrite the output even if it would drop cohort sizes present in the existing report")
	tracePath := flag.String("trace", "", "export a structured trace of the timed reps (.json Chrome trace-event format, .jsonl JSON Lines)")
	telemetryAddr := flag.String("telemetry", "", "serve live expvar+pprof introspection on this address (e.g. 127.0.0.1:6060)")
	ioBench := flag.Bool("io", true, "benchmark dataset serialization (encode/decode, binary and JSON) at each -n size")
	distribProcs := flag.String("distribprocs", "1,2,4", "comma-separated process counts for the distributed pipeline sweep (empty disables)")
	distribNs := flag.String("distribn", "10000,1000000", "comma-separated cohort sizes for the distributed pipeline sweep")
	queryBench := flag.Bool("query", true, "benchmark the vectorized query engine (in-memory and streaming) at each -n size")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the timed reps to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the timed reps) to this file")
	runlogPath := flag.String("runlog", os.Getenv("FPSTUDY_RUNLOG"), "append a run-ledger record (JSONL) to this file on exit (default $FPSTUDY_RUNLOG; empty disables)")
	flag.Parse()

	sizes := parseInts(*ns, "n")
	var workerCounts []int
	for _, part := range strings.Split(*ws, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "fpbench: bad -workers value %q\n", part)
			exit(2)
		}
		workerCounts = append(workerCounts, v)
	}

	// Truncation guard: overwriting the committed report with a run that
	// drops cohort sizes (the default -n has no n=1M, the committed file
	// does) would silently shrink the benchmark trajectory. Checked
	// before any benchmarking so a refused run costs nothing.
	if *out != "-" && !*force {
		if existing, err := benchcmp.Load(*out); err == nil {
			planned := &benchcmp.Report{}
			for _, n := range sizes {
				planned.Runs = append(planned.Runs, benchcmp.Run{N: n})
			}
			if missing := benchcmp.MissingNSizes(existing, planned); len(missing) > 0 {
				fmt.Fprintf(os.Stderr, "fpbench: refusing to overwrite %s: it has runs at n=%v that this invocation would drop (pass -force to overwrite, or add the sizes to -n)\n",
					*out, missing)
				exit(2)
			}
		}
	}

	// One registry accumulates across every rep (it feeds /debug/vars
	// and the manifest); span recorders are per-rep so each run's stage
	// breakdown is isolated. The benchmark numbers include the
	// instrumented pipeline — that is the configuration users run.
	reg := telemetry.NewRegistry()
	core.InstallPipelineTelemetry(reg)
	procRec := telemetry.NewRecorder(reg)
	procRec.PublishExpvar("fpstudy")
	ledger = runlog.Start(*runlogPath, "fpbench", os.Args[1:], reg, procRec)

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewDefaultTracer()
		telemetry.SetTracer(tracer)
	}
	// The mem sampler feeds the live gauges and, when tracing, marks GC
	// cycles on the trace timeline.
	stopMem := telemetry.StartMemSampler(
		reg.Gauge(core.MetricHeapAlloc), reg.Gauge(core.MetricGCCount), 250*time.Millisecond)
	defer stopMem()

	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort at exit
		}()
		fmt.Fprintf(os.Stderr, "fpbench: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr())
	}

	rep := benchcmp.Report{
		SchemaVersion: benchcmp.SchemaVersion,
		Tool:          "fpbench",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Seed:          *seed,
		// VCS is nil for unstamped builds (go run, test binaries);
		// history readers tolerate the omission.
		VCS: runlog.CurrentVCS(),
		Host: benchcmp.Host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			SerialHost: runtime.GOMAXPROCS(0) == 1,
		},
	}
	if rep.Host.SerialHost {
		fmt.Fprintln(os.Stderr, strings.Repeat("*", 72))
		fmt.Fprintln(os.Stderr, "fpbench: WARNING: GOMAXPROCS=1 — every -workers value clamps to a")
		fmt.Fprintln(os.Stderr, "fpbench: serial run on this host. The scaling curve in this report")
		fmt.Fprintln(os.Stderr, "fpbench: measures the host, not the code; the report is tagged")
		fmt.Fprintln(os.Stderr, `fpbench: "serial_host": true so downstream readers can tell.`)
		fmt.Fprintln(os.Stderr, strings.Repeat("*", 72))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "fpbench: wrote CPU profile %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fpbench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "fpbench: wrote heap profile %s\n", *memProfile)
		}()
	}

	// Prime the process-wide one-time costs — the oracle answer key and
	// the generator's background tables — before any timing. Without
	// this the first configuration timed absorbs the whole answer-key
	// derivation, which at -reps 1 skews the serial baseline (and with
	// it every speedup_vs_serial and the scaling gate).
	core.Study{Seed: 1, NMain: 8, NStudent: 2, Workers: 1, ColumnarOnly: true}.Run()

	for _, n := range sizes {
		serial := 0.0
		for _, w := range workerCounts {
			best := 0.0
			var bestSpans []telemetry.SpanSnapshot
			var bestMem memDelta
			// Latency histograms accumulate for the registry's lifetime;
			// bracketing the rep loop with snapshots and subtracting
			// isolates this configuration's observations. Pooled across
			// reps, not best-rep: more reps mean more tail samples.
			latBefore := reg.Snapshot().Latencies
			for r := 0; r < *reps; r++ {
				rec := telemetry.NewRecorder(reg)
				// ColumnarOnly: the benchmark times the columnar pipeline
				// (generation into columns + columnar grading), which is
				// what large cohorts run; row-view materialization is a
				// separate, optional cost.
				study := core.Study{Seed: *seed, NMain: n, NStudent: 52, Workers: w,
					Telemetry: rec, ColumnarOnly: true}
				// A forced GC before sampling makes the per-rep memory
				// deltas comparable (no carry-over garbage).
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				start := time.Now()
				res := study.Run()
				sec := time.Since(start).Seconds()
				runtime.ReadMemStats(&after)
				if len(res.CoreTallies) != n {
					fmt.Fprintf(os.Stderr, "fpbench: run produced %d tallies, want %d\n", len(res.CoreTallies), n)
					exit(1)
				}
				if best == 0 || sec < best {
					best = sec
					bestSpans = rec.Spans()
					bestMem = memDelta{
						allocs:     after.Mallocs - before.Mallocs,
						allocBytes: after.TotalAlloc - before.TotalAlloc,
						gcPause:    after.PauseTotalNs - before.PauseTotalNs,
						gcCount:    after.NumGC - before.NumGC,
					}
				}
			}
			if w == 1 {
				serial = best
			}
			var speedup *float64
			if serial > 0 {
				v := serial / best
				speedup = &v
			}
			rep.Runs = append(rep.Runs, benchcmp.Run{
				N: n, Workers: w, Reps: *reps,
				BestSeconds:         best,
				RespondentsPerSec:   float64(n) / best,
				SpeedupVsSerial:     speedup,
				AllocsPerRespondent: float64(bestMem.allocs) / float64(n),
				TotalAllocMB:        float64(bestMem.allocBytes) / (1 << 20),
				GCPauseTotalMS:      float64(bestMem.gcPause) / 1e6,
				GCCount:             bestMem.gcCount,
				Spans:               bestSpans,
				Latency:             latencyStages(latBefore, reg.Snapshot().Latencies),
			})
			fmt.Fprintf(os.Stderr, "fpbench: n=%d workers=%d best=%.3fs (%.0f respondents/sec, %.1f allocs/respondent, %d GCs)\n",
				n, w, best, float64(n)/best, float64(bestMem.allocs)/float64(n), bestMem.gcCount)
		}
		if *ioBench {
			runs, err := ioBenchSize(reg, n, *seed, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbench:", err)
				exit(1)
			}
			rep.IO = append(rep.IO, runs...)
		}
		if *queryBench {
			runs, err := queryBenchSize(reg, n, *seed, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbench:", err)
				exit(1)
			}
			rep.Query = append(rep.Query, runs...)
		}
	}

	// The distributed sweep times the full multi-process pipeline —
	// spawn, generate, grade, shutdown — so its numbers carry the real
	// coordination overhead (process startup, per-process answer-key
	// derivation, frame serialization), not just the compute.
	if *distribProcs != "" {
		procsList := parseInts(*distribProcs, "distribprocs")
		for _, n := range parseInts(*distribNs, "distribn") {
			runs, err := distribBenchSize(n, *seed, procsList, *reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbench:", err)
				exit(1)
			}
			rep.Distrib = append(rep.Distrib, runs...)
		}
	}

	// The out-of-core headline leg: a filtered grouped mean streaming
	// off a 10M-respondent on-disk shard. Opt-in (generation plus a
	// multi-GB temp file take minutes), so the default bench stays fast:
	//
	//	FPSTUDY_BENCH_LARGE=1 fpbench -o BENCH_pipeline.json
	if *queryBench && os.Getenv("FPSTUDY_BENCH_LARGE") == "1" {
		const largeN = 10_000_000
		fmt.Fprintf(os.Stderr, "fpbench: FPSTUDY_BENCH_LARGE=1 — streaming query legs at n=%d\n", largeN)
		runs, err := queryBenchLarge(reg, largeN, *seed, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			exit(1)
		}
		rep.Query = append(rep.Query, runs...)
	}

	if tracer != nil {
		stopMem() // final GC sample before export; idempotent with the defer
		if err := telemetry.WriteTraceFile(*tracePath, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "fpbench: wrote trace %s (%d events, %d dropped)\n",
			*tracePath, tracer.Recorded()-tracer.Dropped(), tracer.Dropped())
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		exit(1)
	}
	m := procRec.Manifest("fpbench", *seed, 0, 0)
	m.Timestamp = rep.Timestamp
	mpath := telemetry.ManifestPath(*out)
	if err := telemetry.WriteManifest(mpath, m); err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "fpbench: wrote %s (manifest %s)\n", *out, mpath)
}

// latencyStages converts the latency-histogram movement between two
// registry snapshots into the report's per-stage quantile rows: stage
// names are the metric names with the "latency." prefix stripped,
// sorted; stages with no observations in the interval are dropped.
func latencyStages(before, after map[string]telemetry.LatencySnapshot) []benchcmp.StageLatency {
	names := make([]string, 0, len(after))
	for name := range after {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []benchcmp.StageLatency
	for _, name := range names {
		delta := after[name].Sub(before[name])
		if delta.Count == 0 {
			continue
		}
		out = append(out, benchcmp.StageLatencyFromSnapshot(
			strings.TrimPrefix(name, "latency."), delta))
	}
	return out
}

// distribBenchSize times the distributed pipeline at one cohort size
// across process counts. Each rep is the whole life cycle: Start (which
// spawns and handshakes every worker), GenerateMain, Grade, Close. The
// procs=1 entry is the distributed serial baseline the scaling gate
// compares against — it pays the same process-spawn and frame costs,
// isolating the fan-out effect.
func distribBenchSize(n int, seed int64, procsList []int, reps int) ([]benchcmp.DistribRun, error) {
	var runs []benchcmp.DistribRun
	for _, procs := range procsList {
		best := 0.0
		workersPerProc := 0
		for r := 0; r < reps; r++ {
			start := time.Now()
			c, err := distrib.Start(distrib.Options{Procs: procs, Stderr: os.Stderr})
			if err != nil {
				return nil, fmt.Errorf("distrib procs=%d at n=%d: %w", procs, n, err)
			}
			if _, err := c.GenerateMain(seed, n); err != nil {
				c.Close()
				return nil, fmt.Errorf("distrib procs=%d at n=%d: %w", procs, n, err)
			}
			if _, err := c.Grade(); err != nil {
				c.Close()
				return nil, fmt.Errorf("distrib procs=%d at n=%d: %w", procs, n, err)
			}
			workersPerProc = c.Stats().WorkersPerProc
			if err := c.Close(); err != nil {
				return nil, fmt.Errorf("distrib procs=%d at n=%d: %w", procs, n, err)
			}
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		runs = append(runs, benchcmp.DistribRun{
			N: n, Procs: procs, WorkersPerProc: workersPerProc, Reps: reps,
			BestSeconds:       best,
			RespondentsPerSec: float64(n) / best,
		})
		fmt.Fprintf(os.Stderr, "fpbench: n=%d distrib procs=%d best=%.3fs (%.0f respondents/sec)\n",
			n, procs, best, float64(n)/best)
	}
	return runs, nil
}

// queryLegs are the canned engine benchmarks: a compute-heavy full
// scan (the derived quiz score reads 16 columns per respondent), a
// selective filtered count, and a grouped mean — the three shapes the
// figures decompose into. Expressions go through query.Parse, so the
// bench exercises the same path as fpreport -query.
var queryLegs = []struct{ name, expr string }{
	{"scan_mean_score", "//mean:core.score"},
	{"filtered_count", "bg.contrib_size=>1,000,000 lines of code//count"},
	{"grouped_mean", "/bg.formal_training/mean:susp.invalid"},
}

// queryBenchOne times every canned leg at workers {1, 0} over one
// source, verifying each result against want (the other mode's run)
// when non-nil, and returns the recorded runs plus the mem-mode
// results for cross-mode verification.
func queryBenchOne(reg *telemetry.Registry, src query.Source, mode string, n int, reps int,
	want map[string]*query.Result) (runs []benchcmp.QueryRun, got map[string]*query.Result, err error) {
	schema := quiz.Columns()
	resolve := func(name string) (query.Value, error) { return quiz.QueryValue(schema, name) }
	got = map[string]*query.Result{}
	for _, leg := range queryLegs {
		p, err := query.Parse(schema, leg.expr, resolve)
		if err != nil {
			return nil, nil, fmt.Errorf("query leg %s: %w", leg.name, err)
		}
		for _, w := range []int{1, 0} {
			best := 0.0
			var res *query.Result
			latBefore := reg.Snapshot().Latencies
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err = query.Run(src, p.Query, w)
				if err != nil {
					return nil, nil, fmt.Errorf("query leg %s: %w", leg.name, err)
				}
				if sec := time.Since(start).Seconds(); best == 0 || sec < best {
					best = sec
				}
			}
			// Determinism spot-check: both modes and every worker count
			// must agree bit-for-bit.
			if prev, ok := got[leg.name]; ok && !queryResultsEqual(prev, res) {
				return nil, nil, fmt.Errorf("query leg %s: results diverge across worker counts", leg.name)
			}
			if want != nil && !queryResultsEqual(want[leg.name], res) {
				return nil, nil, fmt.Errorf("query leg %s: %s results diverge from mem results", leg.name, mode)
			}
			got[leg.name] = res
			runs = append(runs, benchcmp.QueryRun{
				N: n, Mode: mode, Name: leg.name, Workers: w, Reps: reps,
				Selected:          res.TotalCount(),
				BestSeconds:       best,
				RespondentsPerSec: float64(n) / best,
				Latency:           latencyStages(latBefore, reg.Snapshot().Latencies),
			})
			fmt.Fprintf(os.Stderr, "fpbench: n=%d query/%s/%s workers=%d best=%.4fs (%.0f respondents/sec)\n",
				n, mode, leg.name, w, best, float64(n)/best)
		}
	}
	return runs, got, nil
}

// queryResultsEqual compares two engine results bit-for-bit.
func queryResultsEqual(a, b *query.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	return reflect.DeepEqual(a, b)
}

// queryBenchSize times the canned query legs at one cohort size, in
// memory and streaming off a real .fpds file in a temp directory. The
// streaming results are verified bit-identical to the in-memory ones.
func queryBenchSize(reg *telemetry.Registry, n int, seed int64, reps int) ([]benchcmp.QueryRun, error) {
	cols := respondent.GenerateMainColumnar(seed, n, 0, nil, respondent.Instrumentation{}).Cols
	memRuns, memRes, err := queryBenchOne(reg, query.NewDatasetSource(cols), "mem", n, reps, nil)
	if err != nil {
		return nil, err
	}
	streamRuns, err := queryBenchStream(reg, cols, n, reps, memRes)
	if err != nil {
		return nil, err
	}
	return append(memRuns, streamRuns...), nil
}

// queryBenchLarge is the opt-in out-of-core headline: stream-only legs
// over an on-disk shard at n=10M (the in-memory legs would time the
// same kernels at a size the default -n sweep already covers).
func queryBenchLarge(reg *telemetry.Registry, n int, seed int64, reps int) ([]benchcmp.QueryRun, error) {
	cols := respondent.GenerateMainColumnar(seed, n, 0, nil, respondent.Instrumentation{}).Cols
	return queryBenchStream(reg, cols, n, reps, nil)
}

// queryBenchStream encodes the cohort to a temp .fpds shard and times
// the canned legs through the out-of-core reader.
func queryBenchStream(reg *telemetry.Registry, cols *colstore.Dataset, n, reps int,
	want map[string]*query.Result) ([]benchcmp.QueryRun, error) {
	dir, err := os.MkdirTemp("", "fpbench-query-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cohort"+colstore.BinaryExt)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := cols.EncodeBinary(bw, colstore.IOOptions{}); err != nil {
		f.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	sr, err := colstore.OpenShard(quiz.Columns(), path, colstore.IOOptions{})
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	runs, _, err := queryBenchOne(reg, query.NewShardSource(sr), "stream", n, reps, want)
	return runs, err
}

// ioBenchSize times dataset serialization at one cohort size through
// real files in a temp directory: FPDS binary encode/decode, columnar
// JSON encode (WriteJSON) and streaming decode (DecodeJSON), plus the
// legacy whole-document row decoder (survey.DecodeDataset) as the
// "json-rows" baseline the binary decoder is measured against. The
// cohort is generated once; each op runs reps times and reports its
// best. reg supplies the latency observatory: each op's reps are
// bracketed with registry snapshots so binary entries carry the FPDS
// per-block codec quantiles.
func ioBenchSize(reg *telemetry.Registry, n int, seed int64, reps int) ([]benchcmp.IORun, error) {
	dir, err := os.MkdirTemp("", "fpbench-io-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cols := respondent.GenerateMainColumnar(seed, n, 0, nil, respondent.Instrumentation{}).Cols
	schema := quiz.Columns()
	binPath := filepath.Join(dir, "cohort"+colstore.BinaryExt)
	jsonPath := filepath.Join(dir, "cohort.json")

	var runs []benchcmp.IORun
	bench := func(format, op, path string, fn func() error) error {
		best := 0.0
		latBefore := reg.Snapshot().Latencies
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("io %s/%s at n=%d: %w", format, op, n, err)
			}
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		runs = append(runs, benchcmp.IORun{
			N: n, Format: format, Op: op, Reps: reps,
			Bytes:             st.Size(),
			BestSeconds:       best,
			MBPerSec:          float64(st.Size()) / (1 << 20) / best,
			RespondentsPerSec: float64(n) / best,
			Latency:           latencyStages(latBefore, reg.Snapshot().Latencies),
		})
		fmt.Fprintf(os.Stderr, "fpbench: n=%d io/%s/%s best=%.3fs (%.1f MB/s, %.0f respondents/sec)\n",
			n, format, op, best, float64(st.Size())/(1<<20)/best, float64(n)/best)
		return nil
	}

	steps := []struct {
		format, op, path string
		fn               func() error
	}{
		{"binary", "encode", binPath, func() error {
			f, err := os.Create(binPath)
			if err != nil {
				return err
			}
			if err := cols.EncodeBinary(f, colstore.IOOptions{}); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}},
		{"binary", "decode", binPath, func() error {
			f, err := os.Open(binPath)
			if err != nil {
				return err
			}
			defer f.Close()
			d, err := colstore.DecodeBinary(schema, bufio.NewReaderSize(f, 1<<20), colstore.IOOptions{})
			if err != nil {
				return err
			}
			if d.Len() != n {
				return fmt.Errorf("decoded %d respondents, want %d", d.Len(), n)
			}
			return nil
		}},
		{"json", "encode", jsonPath, func() error {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			bw := bufio.NewWriterSize(f, 1<<20)
			if err := cols.WriteJSON(bw); err != nil {
				f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}},
		{"json", "decode", jsonPath, func() error {
			f, err := os.Open(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			d, err := colstore.DecodeJSON(schema, f)
			if err != nil {
				return err
			}
			if d.Len() != n {
				return fmt.Errorf("decoded %d respondents, want %d", d.Len(), n)
			}
			return nil
		}},
		// The legacy path buffers the whole document and materializes
		// row maps — timing includes the read, because needing the whole
		// file in memory is part of its cost.
		{"json-rows", "decode", jsonPath, func() error {
			data, err := os.ReadFile(jsonPath)
			if err != nil {
				return err
			}
			ds, err := survey.DecodeDataset(data)
			if err != nil {
				return err
			}
			if len(ds.Responses) != n {
				return fmt.Errorf("decoded %d respondents, want %d", len(ds.Responses), n)
			}
			return nil
		}},
	}
	for _, s := range steps {
		if err := bench(s.format, s.op, s.path, s.fn); err != nil {
			return nil, err
		}
	}
	return runs, nil
}
