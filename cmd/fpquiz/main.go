// Command fpquiz administers the paper's floating point quiz at the
// terminal, grading answers with the softfloat oracle. It can also dump
// the full oracle-derived answer key with witnesses.
//
// Usage:
//
//	fpquiz              # take the quiz interactively
//	fpquiz -answers     # print every question with its derived answer
//	fpquiz -section core|opt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

func main() {
	answers := flag.Bool("answers", false, "print the oracle-derived answer key and exit")
	section := flag.String("section", "all", "which quiz to run: core, opt, or all")
	flag.Parse()

	if *answers {
		printAnswerKey(*section)
		return
	}
	runInteractive(*section)
}

func printAnswerKey(section string) {
	if section == "core" || section == "all" {
		fmt.Println("Core quiz answer key (every answer derived by executing IEEE semantics)")
		fmt.Println(strings.Repeat("=", 72))
		for i, q := range quiz.CoreQuestions() {
			res := q.Oracle()
			fmt.Printf("\n%2d. %s\n", i+1, q.Label)
			fmt.Printf("    %s\n", indent(q.Snippet, "    "))
			fmt.Printf("    Assertion: %s\n", q.Prompt)
			fmt.Printf("    Answer: %v\n", res.Holds)
			fmt.Printf("    Why: %s\n", res.Witness)
		}
	}
	if section == "opt" || section == "all" {
		fmt.Println("\nOptimization quiz answer key")
		fmt.Println(strings.Repeat("=", 72))
		for i, q := range quiz.OptQuestions() {
			res := q.Oracle()
			fmt.Printf("\n%2d. %s\n", i+1, q.Label)
			fmt.Printf("    %s\n", q.Prompt)
			if q.IsTrueFalse() {
				fmt.Printf("    Answer: %v\n", res.Holds)
			} else {
				fmt.Printf("    Answer: %s\n", q.CorrectChoice)
			}
			fmt.Printf("    Why: %s\n", res.Witness)
		}
	}
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}

func runInteractive(section string) {
	in := bufio.NewScanner(os.Stdin)
	resp := survey.Response{Token: "you", Answers: map[string]survey.Answer{}}

	ask := func(prompt string, options []string) string {
		fmt.Println()
		fmt.Println(prompt)
		fmt.Printf("[%s] > ", strings.Join(options, "/"))
		if !in.Scan() {
			return ""
		}
		return strings.ToLower(strings.TrimSpace(in.Text()))
	}

	if section == "core" || section == "all" {
		fmt.Println("Core quiz: for each code snippet, is the assertion true or false?")
		fmt.Println("(t = true, f = false, d = don't know, enter = skip)")
		for i, q := range quiz.CoreQuestions() {
			a := ask(fmt.Sprintf("%d/%d\n%s\n%s", i+1, 15, q.Snippet, q.Prompt),
				[]string{"t", "f", "d"})
			switch a {
			case "t", "true":
				resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerTrue}
			case "f", "false":
				resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerFalse}
			case "d", "dk":
				resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerDontKnow}
			}
		}
		t := quiz.ScoreCore(resp)
		fmt.Printf("\nCore quiz: %d correct, %d incorrect, %d don't know, %d unanswered (chance: %.1f; paper mean: 8.5)\n",
			t.Correct, t.Incorrect, t.DontKnow, t.Unanswered, quiz.CoreChance)
	}

	if section == "opt" || section == "all" {
		fmt.Println("\nOptimization quiz:")
		for _, q := range quiz.OptQuestions() {
			if q.IsTrueFalse() {
				a := ask(q.Prompt, []string{"t", "f", "d"})
				switch a {
				case "t", "true":
					resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerTrue}
				case "f", "false":
					resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerFalse}
				case "d", "dk":
					resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerDontKnow}
				}
				continue
			}
			a := ask(q.Prompt, append(append([]string{}, q.Choices...), "d"))
			if a == "d" || a == "dk" {
				resp.Answers[q.ID] = survey.Answer{Choice: survey.AnswerDontKnow}
			} else if a != "" {
				resp.Answers[q.ID] = survey.Answer{Choice: a}
			}
		}
		t := quiz.ScoreOpt(resp)
		fmt.Printf("\nOptimization quiz: %d correct, %d incorrect, %d don't know, %d unanswered\n",
			t.Correct, t.Incorrect, t.DontKnow, t.Unanswered)
	}

	fmt.Println("\nRun `fpquiz -answers` to see the oracle's explanations.")
}
