package main

import (
	"flag"
	"fmt"
	"strings"

	"fpstudy/internal/benchcmp"
)

func diffMain(args []string) int {
	fs := flag.NewFlagSet("fpstat diff", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: fpstat diff old.json new.json")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	out, err := diffReport(fs.Arg(0), fs.Arg(1))
	if err != nil {
		fmt.Fprintln(flag.CommandLine.Output(), "fpstat diff:", err)
		return 2
	}
	fmt.Print(out)
	return 0
}

// diffReport attributes the wall-time movement between two fpbench
// reports: per matched configuration the span trees diff on
// self-time, stages rank by absolute time lost, and the aggregate
// ranking names the top contributor. Latency-quantile deltas from the
// band comparison ride along — the span diff says which stage of the
// timeline absorbed the loss, the quantile deltas say which
// block-level operation's tail moved.
func diffReport(oldPath, newPath string) (string, error) {
	old, err := benchcmp.Load(oldPath)
	if err != nil {
		return "", err
	}
	cur, err := benchcmp.Load(newPath)
	if err != nil {
		return "", err
	}
	res := benchcmp.Compare(old, cur, benchcmp.Bands{})
	attrs := benchcmp.AttributeSpans(old, cur)
	top := benchcmp.TopStages(attrs)

	var b strings.Builder
	fmt.Fprintf(&b, "old: %s (%s)\nnew: %s (%s)\n", oldPath, reportRev(old), newPath, reportRev(cur))
	if old.Host != cur.Host {
		b.WriteString("WARNING: host fingerprints differ — deltas may be host variance, not code\n")
	}

	b.WriteString("\n## Wall time per configuration\n\n")
	if len(attrs) == 0 {
		b.WriteString("no configurations in common\n")
	}
	for _, a := range attrs {
		fmt.Fprintf(&b, "n=%d/workers=%d: %.6fs -> %.6fs (%+.6fs)\n",
			a.N, a.Workers, a.WallOld, a.WallNew, a.WallNew-a.WallOld)
	}

	b.WriteString("\n## Stage attribution (self-time, worst first)\n\n")
	if len(top) == 0 {
		b.WriteString("no span data in common (pre-v2 report?)\n")
	} else {
		fmt.Fprintf(&b, "%4s %-44s %12s %12s %12s\n", "rank", "stage", "old s", "new s", "lost s")
		for i, st := range top {
			fmt.Fprintf(&b, "%4d %-44s %12.6f %12.6f %+12.6f\n",
				i+1, st.Stage, st.OldSeconds, st.NewSeconds, st.Lost)
		}
		if top[0].Lost > 0 {
			fmt.Fprintf(&b, "\ntop contributor: %s (%+.6fs across matched configurations)\n",
				top[0].Stage, top[0].Lost)
		} else {
			b.WriteString("\nno stage lost time (new report is no slower stage-by-stage)\n")
		}
	}

	var lat []benchcmp.Delta
	for _, d := range res.Deltas {
		if d.IsLatency() {
			lat = append(lat, d)
		}
	}
	if len(lat) > 0 {
		b.WriteString("\n## Latency quantile deltas\n\n")
		for _, d := range lat {
			mark := ""
			if d.Regression {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(&b, "%-44s %-10s %12.0f -> %12.0f (%+.1f%%)%s\n",
				d.Config(), d.Metric, d.Old, d.New, 100*d.Change, mark)
		}
	}
	return b.String(), nil
}

// reportRev renders a report's VCS provenance for the header.
func reportRev(r *benchcmp.Report) string {
	if r.VCS == nil {
		return "unstamped build"
	}
	rev := r.VCS.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if r.VCS.Modified {
		rev += " (dirty)"
	}
	return rev
}
