package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpstudy/internal/benchcmp"
	"fpstudy/internal/runlog"
)

func trendMain(args []string) int {
	fs := flag.NewFlagSet("fpstat trend", flag.ExitOnError)
	history := fs.String("history", "BENCH_history.jsonl", "benchmark trajectory (JSONL); missing file reports as empty")
	ledgerPath := fs.String("ledger", os.Getenv("FPSTUDY_RUNLOG"), "run ledger (JSONL; default $FPSTUDY_RUNLOG); missing file reports as empty")
	k := fs.Float64("k", 0, "robust z-score cut for drift flagging (default 3.5)")
	floor := fs.Float64("floor", 0, "relative deviation floor below which points never drift (default 0.10)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fpstat trend [-history file] [-ledger file] [-k N] [-floor N]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	out, err := trendReport(*history, *ledgerPath, benchcmp.DriftParams{K: *k, RelFloor: *floor})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpstat trend:", err)
		return 2
	}
	fmt.Print(out)
	return 0
}

// series is one metric trajectory: parallel slices of value, the
// host fingerprint that measured each point, and its timestamp.
type series struct {
	name   string
	values []float64
	hosts  []string
	times  []string
}

// seriesSet accumulates series in first-seen order.
type seriesSet struct {
	order []string
	byKey map[string]*series
}

func newSeriesSet() *seriesSet { return &seriesSet{byKey: map[string]*series{}} }

func (ss *seriesSet) add(name string, v float64, host, ts string) {
	s, ok := ss.byKey[name]
	if !ok {
		s = &series{name: name}
		ss.byKey[name] = s
		ss.order = append(ss.order, name)
	}
	s.values = append(s.values, v)
	s.hosts = append(s.hosts, host)
	s.times = append(s.times, ts)
}

// modalHost returns the most frequent host key across entries (ties
// break toward the earliest seen) — the baseline a drifted point's
// host is compared against when deciding "host variance or code?".
func modalHost(hosts []string) string {
	counts := map[string]int{}
	var best string
	for _, h := range hosts {
		counts[h]++
		if best == "" || counts[h] > counts[best] {
			best = h
		}
	}
	return best
}

// historySeries flattens the trajectory into per-(n, workers) metric
// series: pipeline throughput and allocs, plus per-stage p99 latency
// when an entry recorded quantiles (v7+ eras; older entries simply
// contribute no points to those series).
func historySeries(entries []benchcmp.HistoryEntry) (*seriesSet, []string) {
	ss := newSeriesSet()
	hosts := make([]string, 0, len(entries))
	for _, e := range entries {
		host := hostKey(e.Host)
		hosts = append(hosts, host)
		for _, r := range e.Runs {
			cfg := fmt.Sprintf("n=%d/workers=%d", r.N, r.Workers)
			ss.add(cfg+" respondents_per_sec", r.RespondentsPerSec, host, e.Timestamp)
			ss.add(cfg+" allocs_per_respondent", r.AllocsPerRespondent, host, e.Timestamp)
			for _, l := range r.Latency {
				ss.add(fmt.Sprintf("%s p99(%s)_ns", cfg, l.Stage), l.P99NS, host, e.Timestamp)
			}
		}
	}
	return ss, hosts
}

// hostKey renders a benchcmp host fingerprint compactly (the runlog
// Host has the same fields and the same rendering).
func hostKey(h benchcmp.Host) string {
	return runlog.Host{GOOS: h.GOOS, GOARCH: h.GOARCH, NumCPU: h.NumCPU,
		GOMAXPROCS: h.GOMAXPROCS, GoVersion: h.GoVersion, SerialHost: h.SerialHost}.Key()
}

// renderSeries writes the summary row for every series and detail
// lines for each drifted point, annotating points whose host differs
// from the modal host as likely host variance.
func renderSeries(b *strings.Builder, ss *seriesSet, modal string, p benchcmp.DriftParams) {
	fmt.Fprintf(b, "%-52s %6s %14s %14s %6s\n", "series", "points", "median", "band(+/-)", "drift")
	var drifted []string
	for _, name := range ss.order {
		s := ss.byKey[name]
		sum := benchcmp.DetectDrift(s.values, p)
		fmt.Fprintf(b, "%-52s %6d %14.4g %14.4g %6d\n", s.name, len(s.values), sum.Median, sum.Band, sum.NumDrift)
		for i, pt := range sum.Points {
			if !pt.Drift {
				continue
			}
			note := ""
			if s.hosts[i] != modal {
				note = fmt.Sprintf("  [host differs from modal (%s) — likely host variance]", s.hosts[i])
			}
			drifted = append(drifted, fmt.Sprintf("  %s @ %s: %.4g (%+.1f%% vs median)%s",
				s.name, s.times[i], pt.Value, 100*pt.Deviation, note))
		}
	}
	if len(drifted) > 0 {
		b.WriteString("\ndrifted points:\n")
		for _, d := range drifted {
			b.WriteString(d + "\n")
		}
	}
}

// trendReport renders the full trajectory report. A missing history
// or ledger file is reported inline, never an error: the observatory
// is useful with either source alone.
func trendReport(historyPath, ledgerPath string, p benchcmp.DriftParams) (string, error) {
	var b strings.Builder

	b.WriteString("## Benchmark trajectory\n\n")
	switch entries, skipped, err := benchcmp.ReadHistoryLenient(historyPath); {
	case historyPath == "" || os.IsNotExist(err):
		fmt.Fprintf(&b, "no history at %q\n", historyPath)
	case err != nil:
		return "", err
	case len(entries) == 0:
		fmt.Fprintf(&b, "%s: no parsable entries (%d line(s) skipped)\n", historyPath, skipped)
	default:
		fmt.Fprintf(&b, "%s: %d entries (%d line(s) skipped)\n", historyPath, len(entries), skipped)
		ss, hosts := historySeries(entries)
		modal := modalHost(hosts)
		fmt.Fprintf(&b, "modal host: %s\n\n", modal)
		renderSeries(&b, ss, modal, p)
	}

	b.WriteString("\n## Run ledger\n\n")
	switch recs, skipped, err := runlog.Read(ledgerPath); {
	case ledgerPath == "" || os.IsNotExist(err):
		fmt.Fprintf(&b, "no ledger at %q\n", ledgerPath)
	case err != nil:
		return "", err
	case len(recs) == 0:
		fmt.Fprintf(&b, "%s: no parsable records (%d line(s) skipped)\n", ledgerPath, skipped)
	default:
		fmt.Fprintf(&b, "%s: %d records (%d line(s) skipped)\n", ledgerPath, len(recs), skipped)
		ss := newSeriesSet()
		hosts := make([]string, 0, len(recs))
		for _, r := range recs {
			host := r.Host.Key()
			if r.Topology != nil {
				// A distributed run's wall time reflects its process
				// fan-out, not just the host: fold the topology into the
				// variance key so e.g. procs=4 runs never masquerade as
				// drift against single-process runs on the same machine.
				host += fmt.Sprintf(" distrib=%dx%d", r.Topology.Procs, r.Topology.WorkersPerProc)
			}
			hosts = append(hosts, host)
			ss.add(r.Tool+" wall_seconds", r.WallSeconds, host, r.Timestamp)
			if r.ExitStatus != 0 {
				fmt.Fprintf(&b, "nonzero exit: %s @ %s (status %d)\n", r.Tool, r.Timestamp, r.ExitStatus)
			}
		}
		b.WriteString("\n")
		renderSeries(&b, ss, modalHost(hosts), p)
	}
	return b.String(), nil
}
