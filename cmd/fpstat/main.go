// Command fpstat is the read side of the perf forensics observatory:
// it turns the run ledger (internal/runlog) and the benchmark
// trajectory (BENCH_history.jsonl) into answers.
//
//	fpstat trend               # per-config metric trajectories with robust drift bands
//	fpstat diff old.json new.json  # attribute a regression to the stage that lost the time
//
// trend reads both files tolerantly — mixed schema eras, blank lines,
// a truncated final line from a crashed writer — and flags points
// outside a median/MAD band (see internal/benchcmp.DetectDrift),
// annotating drifted points whose host fingerprint differs from the
// series' modal host as likely host variance rather than code.
//
// diff loads two fpbench reports and ranks the pipeline stages by
// absolute self-time lost between them (internal/benchcmp
// .AttributeSpans), alongside the per-stage latency-quantile deltas,
// naming the top contributor — the place to point `go tool pprof` at.
//
// fpstat only reads; it never appends to the ledger it inspects.
package main

import (
	"fmt"
	"os"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fpstat trend [-history BENCH_history.jsonl] [-ledger file] [-k 3.5] [-floor 0.10]
  fpstat diff old.json new.json`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "trend":
		os.Exit(trendMain(os.Args[2:]))
	case "diff":
		os.Exit(diffMain(os.Args[2:]))
	default:
		fmt.Fprintf(os.Stderr, "fpstat: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}
