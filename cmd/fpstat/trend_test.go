package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpstudy/internal/benchcmp"
	"fpstudy/internal/runlog"
	"fpstudy/internal/telemetry"
)

// histLine renders one BENCH_history.jsonl entry of a given era.
// throughput goes to a single n=199/workers=1 run; cpus picks the
// host fingerprint (host variance shows up as a num_cpu change).
func histLine(ts string, throughput float64, cpus int, extras string) string {
	host := `{"goos":"linux","goarch":"amd64","num_cpu":` + itoa(cpus) + `,"gomaxprocs":` + itoa(cpus) + `,"go_version":"go1.24.0"}`
	run := `{"n":199,"workers":1,"best_seconds":0.02,"respondents_per_sec":` +
		ftoa(throughput) + `,"allocs_per_respondent":31.5,"gc_pause_total_ms":0,"gc_count":0}`
	return `{"timestamp":"` + ts + `","appended":"` + ts + `","seed":42,"host":` + host + `,"runs":[` + run + `]` + extras + `}`
}

func itoa(v int) string     { b, _ := json.Marshal(v); return string(b) }
func ftoa(v float64) string { b, _ := json.Marshal(v); return string(b) }
func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTrendMixedSchemaHistory is the tolerance contract: a trajectory
// spanning schema eras v3-v9 plus junk and a truncated final line
// renders a report (skip, never crash), and a collapsed run measured
// on a different host is flagged as drift with a host-variance note.
func TestTrendMixedSchemaHistory(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_history.jsonl")
	content := histLine("2026-01-01T00:00:00Z", 10000, 8, "") + "\n" + // v3 era: runs only
		"\n" + // blank line
		histLine("2026-02-01T00:00:00Z", 10100, 8,
			`,"io":[{"n":199,"format":"binary","op":"encode","reps":3,"bytes":17000,"best_seconds":0.001,"mb_per_sec":16.2,"respondents_per_sec":199000}]`) + "\n" + // v5 era: +io
		"corrupt {{{ line\n" +
		histLine("2026-03-01T00:00:00Z", 9900, 8,
			`,"query":[{"n":199,"mode":"mem","name":"grouped_mean","workers":1,"reps":3,"selected":199,"best_seconds":0.0001,"respondents_per_sec":1990000}]`) + "\n" + // v7 era: +query
		histLine("2026-04-01T00:00:00Z", 5000, 1, "") + "\n" + // collapsed run on a 1-cpu host
		histLine("2026-05-01T00:00:00Z", 10050, 8, "") + "\n" +
		histLine("2026-05-15T00:00:00Z", 10020, 8,
			`,"distrib":[{"n":10000,"procs":4,"workers_per_proc":0,"reps":2,"best_seconds":0.08,"respondents_per_sec":125000}]`) + "\n" + // v9 era: +distrib
		`{"timestamp":"2026-06-01T` // truncated final line
	write(t, hist, content)

	out, err := trendReport(hist, filepath.Join(dir, "missing-ledger.jsonl"), benchcmp.DriftParams{})
	if err != nil {
		t.Fatalf("trendReport: %v", err)
	}
	for _, want := range []string{
		"6 entries (2 line(s) skipped)",
		"n=199/workers=1 respondents_per_sec",
		"likely host variance",
		"no ledger at",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
	// The collapsed 5000 point is the only drift in the throughput
	// series; the 1% wiggles sit under the 10% floor.
	if !strings.Contains(out, "@ 2026-04-01T00:00:00Z: 5000") {
		t.Errorf("collapsed run not flagged as drift:\n%s", out)
	}
}

// TestTrendEmptyAndMissingFiles: empty files and absent files render
// inline notes, not errors.
func TestTrendEmptyAndMissingFiles(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	write(t, empty, "")
	out, err := trendReport(empty, filepath.Join(dir, "nope.jsonl"), benchcmp.DriftParams{})
	if err != nil {
		t.Fatalf("trendReport on empty history: %v", err)
	}
	if !strings.Contains(out, "no parsable entries") || !strings.Contains(out, "no ledger at") {
		t.Errorf("empty/missing files not reported inline:\n%s", out)
	}
	out, err = trendReport("", "", benchcmp.DriftParams{})
	if err != nil || !strings.Contains(out, "no history at") {
		t.Errorf("blank paths: err=%v out=%q", err, out)
	}
}

// TestTrendLedger: the ledger section summarizes per-tool wall time,
// surfaces nonzero exits, and skips a truncated tail.
func TestTrendLedger(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	for i, wall := range []float64{0.5, 0.52, 0.48} {
		rec := runlog.Record{Schema: runlog.Schema, Tool: "fpgen", Timestamp: "2026-07-0" + itoa(i+1) + "T00:00:00Z",
			Host: runlog.CurrentHost(), WallSeconds: wall}
		if err := runlog.Append(ledger, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := runlog.Append(ledger, runlog.Record{Schema: runlog.Schema, Tool: "fpbench",
		Timestamp: "2026-07-04T00:00:00Z", Host: runlog.CurrentHost(), WallSeconds: 2, ExitStatus: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ledger, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":1,"tool":"fpgen","wall`) // truncated tail
	f.Close()

	out, err := trendReport(filepath.Join(dir, "no-history.jsonl"), ledger, benchcmp.DriftParams{})
	if err != nil {
		t.Fatalf("trendReport: %v", err)
	}
	for _, want := range []string{
		"4 records (1 line(s) skipped)",
		"fpgen wall_seconds",
		"fpbench wall_seconds",
		"nonzero exit: fpbench @ 2026-07-04T00:00:00Z (status 1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger section missing %q:\n%s", want, out)
		}
	}
}

// TestTrendLedgerTopologyAnnotation: a distributed run's wall time is
// keyed by host AND topology, so when it drifts against the
// single-process baseline the variance note names the fan-out instead
// of blaming the code.
func TestTrendLedgerTopologyAnnotation(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	for i, wall := range []float64{0.5, 0.51, 0.49, 0.5} {
		rec := runlog.Record{Schema: runlog.Schema, Tool: "fpgen", Timestamp: "2026-08-0" + itoa(i+1) + "T00:00:00Z",
			Host: runlog.CurrentHost(), WallSeconds: wall}
		if err := runlog.Append(ledger, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := runlog.Append(ledger, runlog.Record{Schema: runlog.Schema, Tool: "fpgen",
		Timestamp: "2026-08-05T00:00:00Z", Host: runlog.CurrentHost(), WallSeconds: 5,
		Topology: &runlog.Topology{Procs: 3, WorkersPerProc: 2, WorkerWallSeconds: []float64{1, 1, 1}}}); err != nil {
		t.Fatal(err)
	}

	out, err := trendReport(filepath.Join(dir, "no-history.jsonl"), ledger, benchcmp.DriftParams{})
	if err != nil {
		t.Fatalf("trendReport: %v", err)
	}
	if !strings.Contains(out, "distrib=3x2") {
		t.Errorf("drifted distributed run not annotated with its topology:\n%s", out)
	}
	if !strings.Contains(out, "likely host variance") {
		t.Errorf("topology mismatch not flagged as host variance:\n%s", out)
	}
}

// TestDiffReportNamesSlowedStage: the CLI-level acceptance contract —
// a report pair with a 20% injected slowdown in one stage names that
// stage as the top contributor.
func TestDiffReportNamesSlowedStage(t *testing.T) {
	dir := t.TempDir()
	spans := func(grade float64) []telemetry.SpanSnapshot {
		return []telemetry.SpanSnapshot{{Name: "run", Seconds: 1.0 + grade, Children: []telemetry.SpanSnapshot{
			{Name: "generate", Seconds: 1.0},
			{Name: "grade", Seconds: grade},
		}}}
	}
	mk := func(name string, grade, wall float64) string {
		rep := benchcmp.Report{SchemaVersion: benchcmp.SchemaVersion, Tool: "fpbench",
			Runs: []benchcmp.Run{{N: 199, Workers: 1, BestSeconds: wall,
				RespondentsPerSec: 199 / wall, Spans: spans(grade)}}}
		data, err := json.Marshal(&rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		write(t, path, string(data))
		return path
	}
	oldPath := mk("old.json", 1.0, 2.0)
	newPath := mk("new.json", 1.2, 2.2)

	out, err := diffReport(oldPath, newPath)
	if err != nil {
		t.Fatalf("diffReport: %v", err)
	}
	if !strings.Contains(out, "top contributor: run/grade") {
		t.Errorf("diff did not name run/grade as top contributor:\n%s", out)
	}
	if !strings.Contains(out, "unstamped build") {
		t.Errorf("missing provenance header:\n%s", out)
	}
}
