// Command fpsurvey manages the survey instrument and response
// datasets: print the instrument as JSON, validate a dataset against
// it, tally a question, or anonymize a dataset in place.
//
// Datasets load through the streaming columnar ingest layer
// (internal/colstore): the format is sniffed from the leading bytes, so
// every operation accepts both row JSON and FPDS binary shards, and
// JSON parses token-at-a-time straight into columns instead of a
// whole-file unmarshal. Each load prints a one-line ingest summary
// (format, respondents, MB, seconds) to stderr.
//
// Usage:
//
//	fpsurvey -instrument                 # dump the instrument JSON
//	fpsurvey -validate data.json         # check a dataset
//	fpsurvey -tally bg.area data.fpds    # tabulate one question
//	fpsurvey -anonymize data.json        # rewrite with opaque tokens
//
// The slice subcommand runs an ad-hoc filter/groupby/agg expression
// through the vectorized query engine (internal/query documents the
// grammar). Binary .fpds shards stream block-at-a-time off disk in
// bounded memory; row JSON loads into columns first:
//
//	fpsurvey slice 'susp.invalid>=4/bg.contrib_size/count' data.fpds
package main

import (
	"flag"
	"fmt"
	"os"

	"fpstudy/internal/colstore"
	"fpstudy/internal/query"
	"fpstudy/internal/quiz"
	"fpstudy/internal/runlog"
	"fpstudy/internal/survey"
)

var workers = flag.Int("workers", 0, "worker goroutines for codec/view fan-out (<=0 means GOMAXPROCS)")

// ledger is this invocation's run-ledger record (nil when -runlog is
// unset); exit routes every termination through it so the appended
// record carries the real exit status.
var ledger *runlog.Run

func exit(code int) {
	ledger.Finish(code)
	os.Exit(code)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "slice" {
		slice(os.Args[2:])
		ledger.Finish(0)
		return
	}
	instrument := flag.Bool("instrument", false, "print the survey instrument JSON")
	text := flag.Bool("text", false, "print the participant-facing survey text")
	validate := flag.String("validate", "", "validate a dataset file")
	tally := flag.String("tally", "", "question ID to tabulate (requires a dataset argument)")
	anonymize := flag.String("anonymize", "", "anonymize a dataset file in place")
	csv := flag.String("csv", "", "flatten a dataset file to CSV on stdout")
	runlogPath := flag.String("runlog", os.Getenv("FPSTUDY_RUNLOG"), "append a run-ledger record (JSONL) to this file on exit (default $FPSTUDY_RUNLOG; empty disables)")
	flag.Parse()
	ledger = runlog.Start(*runlogPath, "fpsurvey", os.Args[1:], nil, nil)

	ins := quiz.Instrument()

	switch {
	case *text:
		fmt.Print(ins.RenderText())

	case *instrument:
		data, err := survey.EncodeInstrument(ins)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()

	case *validate != "":
		cols, _ := load(*validate)
		if err := ins.ValidateDataset(rows(cols)); err != nil {
			fatal(err)
		}
		fmt.Printf("fpsurvey: %s: %d responses, all valid\n", *validate, cols.Len())

	case *tally != "":
		if flag.NArg() < 1 {
			fatal(fmt.Errorf("usage: fpsurvey -tally <questionID> <dataset>"))
		}
		cols, _ := load(flag.Arg(0))
		t, err := ins.Tally(rows(cols), *tally)
		if err != nil {
			fatal(err)
		}
		total := cols.Len()
		for _, k := range survey.SortedKeys(t) {
			fmt.Printf("%-60s %4d  %5.1f%%\n", k, t[k], 100*float64(t[k])/float64(total))
		}

	case *csv != "":
		cols, _ := load(*csv)
		fmt.Print(ins.FlattenCSV(rows(cols)))

	case *anonymize != "":
		cols, info := load(*anonymize)
		cols.Anonymize()
		f, err := os.Create(*anonymize)
		if err != nil {
			fatal(err)
		}
		// Rewrite in the format the file arrived in.
		if info.Format == colstore.FormatBinary {
			err = cols.EncodeBinary(f, colstore.IOOptions{Workers: *workers})
		} else {
			err = cols.WriteJSON(f)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fpsurvey: anonymized %d responses in %s\n", cols.Len(), *anonymize)

	default:
		flag.Usage()
		exit(2)
	}
	ledger.Finish(0)
}

// slice runs one query expression over a dataset file. Binary shards
// stream out of core; JSON loads in memory.
func slice(args []string) {
	fs := flag.NewFlagSet("fpsurvey slice", flag.ExitOnError)
	sliceWorkers := fs.Int("workers", 0, "worker goroutines (<=0 means GOMAXPROCS); never affects the result")
	runlogPath := fs.String("runlog", os.Getenv("FPSTUDY_RUNLOG"), "append a run-ledger record (JSONL) to this file on exit (default $FPSTUDY_RUNLOG; empty disables)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fpsurvey slice [-workers N] '<filter>/<groupby>/<agg>' <dataset>")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ledger = runlog.Start(*runlogPath, "fpsurvey", os.Args[1:], nil, nil)
	if fs.NArg() != 2 {
		fs.Usage()
		exit(2)
	}
	expr, path := fs.Arg(0), fs.Arg(1)

	schema := quiz.Columns()
	resolve := func(name string) (query.Value, error) { return quiz.QueryValue(schema, name) }
	p, err := query.Parse(schema, expr, resolve)
	if err != nil {
		fatal(err)
	}

	var src query.Source
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	head := make([]byte, 8)
	k, _ := f.ReadAt(head, 0)
	f.Close()
	if colstore.DetectFormat(head[:k]) == colstore.FormatBinary {
		sr, err := colstore.OpenShard(schema, path, colstore.IOOptions{Workers: *sliceWorkers})
		if err != nil {
			fatal(err)
		}
		defer sr.Close()
		fmt.Fprintf(os.Stderr, "fpsurvey: streaming %s: fpds, %d responses\n", path, sr.Len())
		src = query.NewShardSource(sr)
	} else {
		*workers = *sliceWorkers
		cols, _ := load(path)
		src = query.NewDatasetSource(cols)
	}

	res, err := query.Run(src, p.Query, *sliceWorkers)
	if err != nil {
		fatal(err)
	}
	fmt.Print(p.Render(res))
}

// load streams a dataset file into columns, sniffing the format, and
// prints the ingest summary to stderr.
func load(path string) (*colstore.Dataset, colstore.LoadInfo) {
	cols, info, err := colstore.LoadFile(quiz.Columns(), path, colstore.IOOptions{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fpsurvey: loaded %s: %s, %d responses, %.1f MB, %.2fs\n",
		path, info.Format, cols.Len(), float64(info.Bytes)/(1<<20), info.Elapsed.Seconds())
	return cols, info
}

// rows materializes the row view for the operations that consume
// survey.Dataset (validation, tallies, CSV export).
func rows(cols *colstore.Dataset) *survey.Dataset {
	return cols.ToSurveyWorkers(*workers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsurvey:", err)
	exit(1)
}
