// Command fpsurvey manages the survey instrument and response
// datasets: print the instrument as JSON, validate a dataset against
// it, tally a question, or anonymize a dataset in place.
//
// Usage:
//
//	fpsurvey -instrument                 # dump the instrument JSON
//	fpsurvey -validate data.json         # check a dataset
//	fpsurvey -tally bg.area data.json    # tabulate one question
//	fpsurvey -anonymize data.json        # rewrite with opaque tokens
package main

import (
	"flag"
	"fmt"
	"os"

	"fpstudy/internal/quiz"
	"fpstudy/internal/survey"
)

func main() {
	instrument := flag.Bool("instrument", false, "print the survey instrument JSON")
	text := flag.Bool("text", false, "print the participant-facing survey text")
	validate := flag.String("validate", "", "validate a dataset file")
	tally := flag.String("tally", "", "question ID to tabulate (requires a dataset argument)")
	anonymize := flag.String("anonymize", "", "anonymize a dataset file in place")
	csv := flag.String("csv", "", "flatten a dataset file to CSV on stdout")
	flag.Parse()

	ins := quiz.Instrument()

	switch {
	case *text:
		fmt.Print(ins.RenderText())

	case *instrument:
		data, err := survey.EncodeInstrument(ins)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()

	case *validate != "":
		ds := load(*validate)
		if err := ins.ValidateDataset(ds); err != nil {
			fatal(err)
		}
		fmt.Printf("fpsurvey: %s: %d responses, all valid\n", *validate, len(ds.Responses))

	case *tally != "":
		if flag.NArg() < 1 {
			fatal(fmt.Errorf("usage: fpsurvey -tally <questionID> <dataset.json>"))
		}
		ds := load(flag.Arg(0))
		t, err := ins.Tally(ds, *tally)
		if err != nil {
			fatal(err)
		}
		total := len(ds.Responses)
		for _, k := range survey.SortedKeys(t) {
			fmt.Printf("%-60s %4d  %5.1f%%\n", k, t[k], 100*float64(t[k])/float64(total))
		}

	case *csv != "":
		ds := load(*csv)
		fmt.Print(ins.FlattenCSV(ds))

	case *anonymize != "":
		ds := load(*anonymize)
		ds.Anonymize()
		data, err := survey.EncodeDataset(ds)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*anonymize, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fpsurvey: anonymized %d responses in %s\n", len(ds.Responses), *anonymize)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *survey.Dataset {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	ds, err := survey.DecodeDataset(data)
	if err != nil {
		fatal(err)
	}
	return ds
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsurvey:", err)
	os.Exit(1)
}
