// Command fptune auto-tunes the precision of a floating point
// expression: it finds the lowest per-operation format assignment that
// keeps the result within a relative error bound of the binary64
// reference over a random corpus — a miniature Precimonious, one of the
// precision-reduction systems the paper's introduction cites.
//
// Usage:
//
//	fptune 'sqrt(a*a + b*b)'
//	fptune -tol 1e-3 -corpus 500 '(a + b)*(a - b)'
package main

import (
	"flag"
	"fmt"
	"os"

	"fpstudy/internal/expr"
	"fpstudy/internal/tuner"
)

func main() {
	tol := flag.Float64("tol", 1e-6, "maximum relative error vs binary64")
	corpusSize := flag.Int("corpus", 300, "number of test inputs")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fptune [-tol t] [-corpus n] '<expression>'")
		os.Exit(2)
	}
	n, err := expr.Parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fptune:", err)
		os.Exit(1)
	}
	corpus := tuner.Corpus(n, *corpusSize, *seed)
	res := tuner.Tune(n, corpus, *tol)

	fmt.Printf("expression:   %s\n", n.String())
	fmt.Printf("tolerance:    %g relative\n", *tol)
	fmt.Printf("corpus:       %d inputs\n", len(corpus))
	fmt.Printf("operations:   %d tunable\n", res.Ops)
	fmt.Printf("demoted:      %d (saving %d significand bits total)\n", res.Demoted, res.BitsSaved)
	fmt.Printf("worst error:  %.3g relative\n", res.MaxRelError)
	fmt.Printf("trials:       %d\n", res.Trials)
	if len(res.Assignment) == 0 {
		fmt.Println("assignment:   everything stays binary64")
		return
	}
	fmt.Printf("assignment:   %s\n", res.Assignment)
}
