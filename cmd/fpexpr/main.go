// Command fpexpr evaluates a floating point expression on the softfloat
// substrate and reports everything the paper says developers rarely
// see: the exact bit pattern, the exception flags raised, the result in
// every format, the effect of rounding modes and fast-math, and the
// arbitrary-precision shadow value.
//
// Usage:
//
//	fpexpr '0.1 + 0.2'
//	fpexpr -var a=1e16 -var b=1 '(a + b) - a'
//	fpexpr -format binary16 'sqrt(2)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fpstudy/internal/expr"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/lint"
	"fpstudy/internal/mpfloat"
	"fpstudy/internal/optsim"
)

type varFlags map[string]float64

func (v varFlags) String() string { return fmt.Sprint(map[string]float64(v)) }
func (v varFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	v[name] = f
	return nil
}

func main() {
	vars := varFlags{}
	flag.Var(vars, "var", "bind a variable, e.g. -var a=1.5 (repeatable)")
	formatName := flag.String("format", "binary64", "binary16, bfloat16, binary32, or binary64")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fpexpr [-var name=value]... [-format f] '<expression>'")
		os.Exit(2)
	}
	src := flag.Arg(0)
	n, err := expr.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpexpr:", err)
		os.Exit(1)
	}

	formats := map[string]ieee754.Format{
		"binary16": ieee754.Binary16,
		"bfloat16": ieee754.Bfloat16,
		"binary32": ieee754.Binary32,
		"binary64": ieee754.Binary64,
	}
	f, ok := formats[*formatName]
	if !ok {
		fmt.Fprintln(os.Stderr, "fpexpr: unknown format", *formatName)
		os.Exit(2)
	}

	bind := func(g ieee754.Format) expr.Env {
		env := expr.Env{}
		var scratch ieee754.Env
		for k, v := range vars {
			env[k] = g.FromFloat64(&scratch, v)
		}
		return env
	}

	// Primary evaluation.
	var fe ieee754.Env
	res := expr.Eval(f, &fe, n, bind(f))
	fmt.Printf("expression: %s\n", n.String())
	fmt.Printf("format:     %s\n", f.Name)
	fmt.Printf("value:      %s\n", f.String(res))
	fmt.Printf("exact form: %s\n", f.Hex(res))
	fmt.Printf("encoding:   %s\n", f.BitString(res))
	fmt.Printf("flags:      %s\n", fe.Flags)

	// Every format side by side.
	fmt.Println("\nacross formats:")
	for _, name := range []string{"binary16", "bfloat16", "binary32", "binary64"} {
		g := formats[name]
		var ge ieee754.Env
		r := expr.Eval(g, &ge, n, bind(g))
		fmt.Printf("  %-9s %-24s flags: %s\n", g.Name, g.String(r), ge.Flags)
	}

	// Rounding modes.
	fmt.Println("\nacross rounding modes:")
	for _, m := range []ieee754.RoundingMode{
		ieee754.NearestEven, ieee754.NearestAway, ieee754.TowardZero,
		ieee754.TowardPositive, ieee754.TowardNegative,
	} {
		ge := ieee754.Env{Rounding: m}
		r := expr.Eval(f, &ge, n, bind(f))
		fmt.Printf("  %-22s %s\n", m, f.Hex(r))
	}

	// Fast-math.
	cfg := optsim.FastMath()
	opt, passes := cfg.Optimize(n)
	oe := cfg.EnvFor()
	optRes := expr.Eval(f, oe, opt, bind(f))
	fmt.Println("\nunder -ffast-math:")
	fmt.Printf("  rewritten:  %s (passes: %v)\n", opt.String(), passes)
	fmt.Printf("  value:      %s", f.String(optRes))
	if optRes != res && !(f.IsNaN(optRes) && f.IsNaN(res)) {
		fmt.Printf("   <-- DIFFERS from strict IEEE")
	}
	fmt.Println()

	// Static hazards.
	if findings := lint.CheckExpr(n); len(findings) > 0 {
		fmt.Println("\nstatic analysis:")
		for _, fd := range findings {
			fmt.Printf("  %s\n", fd)
		}
	}

	// Arbitrary-precision shadow.
	ctx := mpfloat.NewContext(200)
	vm := map[string]mpfloat.Float{}
	for k, v := range vars {
		vm[k] = mpfloat.FromFloat64(v)
	}
	shadow := ctx.EvalExpr(n, vm)
	fmt.Println("\n200-bit shadow:")
	fmt.Printf("  value:      %s\n", shadow.DecimalString(40))
}
