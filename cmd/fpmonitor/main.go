// Command fpmonitor runs numerical kernels on the softfloat substrate
// under the floating point exception monitor — the runtime tool the
// paper's conclusions propose — and prints an audit of which
// exceptional conditions occurred, how often, and how suspicious a
// well-calibrated developer should be of the output.
//
// Usage:
//
//	fpmonitor -list                 # list available kernels
//	fpmonitor -kernel lorenz        # audit one kernel
//	fpmonitor                       # audit the whole suite
//	fpmonitor -format binary32      # run in another format
//	fpmonitor -ftz                  # non-standard flush-to-zero mode
//	fpmonitor -telemetry 127.0.0.1:6060  # live per-kernel spans on /debug/vars
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
	"fpstudy/internal/monitor"
	"fpstudy/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list kernels and exit")
	name := flag.String("kernel", "", "run only the named kernel")
	formatName := flag.String("format", "binary64", "binary16, binary32, or binary64")
	ftz := flag.Bool("ftz", false, "enable flush-to-zero/denormals-are-zero (non-standard)")
	telemetryAddr := flag.String("telemetry", "", "serve live expvar+pprof introspection on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	suite := kernels.All()
	if *list {
		for _, k := range suite {
			fmt.Printf("%-18s %s\n", k.Name, k.Description)
		}
		return
	}

	// The kernel audits are observable like the pipeline tools: one
	// span per kernel on /debug/vars while the suite runs, plus
	// per-kernel exception-rate gauges on the shared registry so the
	// audit outcome is scrapeable from /metrics. The nil Recorder and
	// nil registry make all of this a no-op when -telemetry is unset.
	var rec *telemetry.Recorder
	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		rec = telemetry.NewRecorder(reg)
		rec.PublishExpvar("fpstudy")
		srv, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpmonitor:", err)
			os.Exit(1)
		}
		// Graceful shutdown releases the port at exit but lets an
		// in-flight scrape finish (bounded).
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort at exit
		}()
		fmt.Fprintf(os.Stderr, "fpmonitor: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr())
	}

	var f ieee754.Format
	switch *formatName {
	case "binary16":
		f = ieee754.Binary16
	case "binary32":
		f = ieee754.Binary32
	case "binary64":
		f = ieee754.Binary64
	default:
		fmt.Fprintln(os.Stderr, "fpmonitor: unknown format", *formatName)
		os.Exit(2)
	}

	ran := 0
	for _, k := range suite {
		if *name != "" && k.Name != *name {
			continue
		}
		ran++
		span := rec.StartSpan(k.Name)
		m := monitor.NewWithEnv(ieee754.Env{FTZ: *ftz, DAZ: *ftz})
		res := k.Run(m.Env(), f)
		rep := m.Report()
		span.AddItems(int64(rep.TotalOps))
		span.End()
		publishKernelRates(reg, k.Name, rep)
		fmt.Printf("=== %s (%s) ===\n", k.Name, k.Description)
		fmt.Printf("result: %s\n", f.String(res))
		fmt.Print(rep.String())
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fpmonitor: no kernel named %q (try -list)\n", *name)
		os.Exit(2)
	}
}

// publishKernelRates exposes one kernel's audit as gauges on the
// shared registry: per-condition exception rates (events per monitored
// operation) plus the divide-by-zero rate and the ground-truth
// suspicion score, under "kernel.<name>.". With -telemetry set they
// appear on /debug/vars and in Prometheus form on /metrics
// (fpstudy_kernel_lorenz_exceptions_overflow_rate ...); with a nil
// registry every Gauge call is a no-op.
func publishKernelRates(reg *telemetry.Registry, kernel string, rep monitor.Report) {
	rate := func(count uint64) float64 {
		if rep.TotalOps == 0 {
			return 0
		}
		return float64(count) / float64(rep.TotalOps)
	}
	prefix := "kernel." + kernel + "."
	for _, e := range rep.Entries {
		metric := strings.TrimPrefix(e.Condition.MetricName(), "fp.")
		reg.Gauge(prefix + metric + "_rate").Set(rate(e.Count))
	}
	reg.Gauge(prefix + "exceptions.divbyzero_rate").Set(rate(rep.DivByZero))
	reg.Gauge(prefix + "ops").Set(float64(rep.TotalOps))
	reg.Gauge(prefix + "suspicion").Set(float64(rep.SuspicionScore()))
}
