// Command fpmonitor runs numerical kernels on the softfloat substrate
// under the floating point exception monitor — the runtime tool the
// paper's conclusions propose — and prints an audit of which
// exceptional conditions occurred, how often, and how suspicious a
// well-calibrated developer should be of the output.
//
// Usage:
//
//	fpmonitor -list                 # list available kernels
//	fpmonitor -kernel lorenz        # audit one kernel
//	fpmonitor                       # audit the whole suite
//	fpmonitor -format binary32      # run in another format
//	fpmonitor -ftz                  # non-standard flush-to-zero mode
//	fpmonitor -telemetry 127.0.0.1:6060  # live per-kernel spans on /debug/vars
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fpstudy/internal/ieee754"
	"fpstudy/internal/kernels"
	"fpstudy/internal/monitor"
	"fpstudy/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list kernels and exit")
	name := flag.String("kernel", "", "run only the named kernel")
	formatName := flag.String("format", "binary64", "binary16, binary32, or binary64")
	ftz := flag.Bool("ftz", false, "enable flush-to-zero/denormals-are-zero (non-standard)")
	telemetryAddr := flag.String("telemetry", "", "serve live expvar+pprof introspection on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	suite := kernels.All()
	if *list {
		for _, k := range suite {
			fmt.Printf("%-18s %s\n", k.Name, k.Description)
		}
		return
	}

	// The kernel audits are observable like the pipeline tools: one
	// span per kernel on /debug/vars while the suite runs. The nil
	// Recorder makes all of this a no-op when -telemetry is unset.
	var rec *telemetry.Recorder
	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		rec = telemetry.NewRecorder(reg)
		rec.PublishExpvar("fpstudy")
		srv, err := telemetry.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpmonitor:", err)
			os.Exit(1)
		}
		// Graceful shutdown releases the port at exit but lets an
		// in-flight scrape finish (bounded).
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort at exit
		}()
		fmt.Fprintf(os.Stderr, "fpmonitor: telemetry on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr())
	}

	var f ieee754.Format
	switch *formatName {
	case "binary16":
		f = ieee754.Binary16
	case "binary32":
		f = ieee754.Binary32
	case "binary64":
		f = ieee754.Binary64
	default:
		fmt.Fprintln(os.Stderr, "fpmonitor: unknown format", *formatName)
		os.Exit(2)
	}

	ran := 0
	for _, k := range suite {
		if *name != "" && k.Name != *name {
			continue
		}
		ran++
		span := rec.StartSpan(k.Name)
		m := monitor.NewWithEnv(ieee754.Env{FTZ: *ftz, DAZ: *ftz})
		res := k.Run(m.Env(), f)
		rep := m.Report()
		span.AddItems(int64(rep.TotalOps))
		span.End()
		fmt.Printf("=== %s (%s) ===\n", k.Name, k.Description)
		fmt.Printf("result: %s\n", f.String(res))
		fmt.Print(rep.String())
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fpmonitor: no kernel named %q (try -list)\n", *name)
		os.Exit(2)
	}
}
