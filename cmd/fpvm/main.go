// Command fpvm assembles and runs floating point VM programs under the
// exception monitor — the paper's proposed "spy on unmodified binaries"
// tool, for this repository's binaries.
//
// Usage:
//
//	fpvm -list
//	fpvm -run harmonic-sum -var n=1000
//	fpvm -run newton-sqrt -var x=2 -format binary16 -trace
//	fpvm -file prog.fpasm -var x=1
//	fpvm -dis newton-sqrt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fpstudy/internal/fpvm"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/lint"
	"fpstudy/internal/monitor"
)

type varFlags map[string]float64

func (v varFlags) String() string { return fmt.Sprint(map[string]float64(v)) }
func (v varFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	v[name] = f
	return nil
}

func main() {
	vars := varFlags{}
	flag.Var(vars, "var", "bind a variable, e.g. -var n=100 (repeatable)")
	list := flag.Bool("list", false, "list built-in programs")
	run := flag.String("run", "", "run a built-in program by name")
	file := flag.String("file", "", "assemble and run a program file")
	dis := flag.String("dis", "", "disassemble a built-in program")
	formatName := flag.String("format", "binary64", "binary16, bfloat16, binary32, binary64")
	trace := flag.Bool("trace", false, "print the exception trace")
	flag.Parse()

	builtins := map[string]*fpvm.Program{}
	for _, p := range fpvm.SamplePrograms() {
		builtins[p.Name] = p
	}

	if *list {
		for _, p := range fpvm.SamplePrograms() {
			fmt.Printf("%-16s %d instructions\n", p.Name, len(p.Code))
		}
		return
	}
	if *dis != "" {
		p, ok := builtins[*dis]
		if !ok {
			fatal(fmt.Errorf("unknown program %q", *dis))
		}
		fmt.Print(p.Disassemble())
		return
	}

	var prog *fpvm.Program
	switch {
	case *run != "":
		p, ok := builtins[*run]
		if !ok {
			fatal(fmt.Errorf("unknown program %q (try -list)", *run))
		}
		prog = p
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err := fpvm.Assemble(*file, string(src))
		if err != nil {
			fatal(err)
		}
		prog = p
	default:
		flag.Usage()
		os.Exit(2)
	}

	formats := map[string]ieee754.Format{
		"binary16": ieee754.Binary16, "bfloat16": ieee754.Bfloat16,
		"binary32": ieee754.Binary32, "binary64": ieee754.Binary64,
	}
	f, ok := formats[*formatName]
	if !ok {
		fatal(fmt.Errorf("unknown format %q", *formatName))
	}

	tr := monitor.NewTracer(0, 16)
	vm := &fpvm.VM{F: f, E: tr.Env(), StepLimit: 50_000_000}
	bound := map[string]uint64{}
	var scratch ieee754.Env
	for k, v := range vars {
		bound[k] = f.FromFloat64(&scratch, v)
	}
	res, err := vm.Run(prog, bound)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program: %s (%s)\n", prog.Name, f.Name)
	fmt.Printf("result:  %s\n", f.String(res))
	if findings := lint.CheckProgram(prog); len(findings) > 0 {
		fmt.Println("static analysis:")
		for _, fd := range findings {
			fmt.Printf("  %s\n", fd)
		}
	}
	if *trace {
		fmt.Print(tr.TraceReport())
	} else {
		fmt.Print(tr.Report().String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpvm:", err)
	os.Exit(1)
}
