// Command fpgen generates synthetic survey datasets: the calibrated
// main cohort (background + all quizzes) or the student suspicion-quiz
// cohort.
//
// Usage:
//
//	fpgen -n 199 -seed 42 -o main.json
//	fpgen -students -n 52 -seed 43 -o students.json
package main

import (
	"flag"
	"fmt"
	"os"

	"fpstudy/internal/respondent"
	"fpstudy/internal/survey"
)

func main() {
	n := flag.Int("n", 199, "number of respondents")
	seed := flag.Int64("seed", 42, "generation seed")
	students := flag.Bool("students", false, "generate the student (suspicion-only) cohort")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var ds *survey.Dataset
	if *students {
		ds = respondent.GenerateStudents(*seed, *n)
	} else {
		ds = respondent.GenerateMain(*seed, *n).Dataset
	}
	data, err := survey.EncodeDataset(ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fpgen: wrote %d responses to %s\n", len(ds.Responses), *out)
}
