// Command fpgen generates synthetic survey datasets: the calibrated
// main cohort (background + all quizzes) or the student suspicion-quiz
// cohort.
//
// Generation fans out across CPU cores; -workers bounds the
// parallelism. The output is bit-identical for a given seed at any
// worker count, and the dataset is streamed to the output one response
// at a time, so very large cohorts (-n 1000000) run in bounded memory.
//
// Usage:
//
//	fpgen -n 199 -seed 42 -o main.json
//	fpgen -students -n 52 -seed 43 -o students.json
//	fpgen -n 1000000 -workers 8 -o big.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"fpstudy/internal/respondent"
	"fpstudy/internal/survey"
)

func main() {
	n := flag.Int("n", 199, "number of respondents")
	seed := flag.Int64("seed", 42, "generation seed")
	students := flag.Bool("students", false, "generate the student (suspicion-only) cohort")
	workers := flag.Int("workers", 0, "worker goroutines (<=0 means GOMAXPROCS); never affects the data")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var ds *survey.Dataset
	if *students {
		ds = respondent.GenerateStudentsWorkers(*seed, *n, *workers)
	} else {
		ds = respondent.GenerateMainWorkers(*seed, *n, *workers).Dataset
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := survey.WriteDataset(bw, ds); err != nil {
		fmt.Fprintln(os.Stderr, "fpgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		bw.WriteString("\n")
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "fpgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "fpgen: wrote %d responses to %s\n", len(ds.Responses), *out)
	}
}
