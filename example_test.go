package fpstudy_test

// Runnable documentation examples (go test runs these and checks the
// output; godoc displays them).

import (
	"fmt"

	"fpstudy"
)

// The softfloat computes with visible exception flags — here, the
// famous 0.1 + 0.2.
func ExampleFormat() {
	var e fpstudy.Env
	a := fpstudy.Binary64.FromFloat64(&e, 0.1)
	b := fpstudy.Binary64.FromFloat64(&e, 0.2)
	sum := fpstudy.Binary64.Add(&e, a, b)
	fmt.Println(fpstudy.Binary64.String(sum))
	fmt.Println(e.Flags)
	// Output:
	// 0.30000000000000004
	// inexact
}

// Every quiz answer is derived by executing IEEE semantics.
func ExampleCoreQuestions() {
	for _, q := range fpstudy.CoreQuestions() {
		if q.ID != "core.zerodivzero" {
			continue
		}
		res := q.Oracle()
		fmt.Println("assertion holds:", res.Holds)
	}
	// Output:
	// assertion holds: false
}

// The exception monitor audits a computation's sticky flags — here a
// divide-by-zero that leaves no NaN in the output.
func ExampleMonitorKernel() {
	for _, k := range fpstudy.Kernels() {
		if k.Name != "hidden-infinity" {
			continue
		}
		res, rep := fpstudy.MonitorKernel(fpstudy.Binary64, k.Run)
		fmt.Println("output:", fpstudy.Binary64.String(res))
		fmt.Println("divide-by-zero events:", rep.DivByZero)
	}
	// Output:
	// output: 0
	// divide-by-zero events: 1
}

// Compliance checking answers the optimization quiz mechanically.
func ExampleCheckCompliance() {
	n, _ := fpstudy.ParseExpr("a*b + c")
	v := fpstudy.CheckCompliance(fpstudy.Binary64, n, fpstudy.OptForLevel(3), 2000, 1)
	fmt.Println("-O3 compliant:", v.Compliant)
	fmt.Println("passes:", v.PassesApplied)
	// Output:
	// -O3 compliant: false
	// passes: [fma-contraction]
}

// TwoSum captures the exact rounding error of an addition.
func ExampleTwoSum() {
	var e fpstudy.Env
	a := fpstudy.Binary64.FromFloat64(&e, 1e16)
	b := fpstudy.Binary64.FromFloat64(&e, 1)
	s, err := fpstudy.TwoSum(&e, fpstudy.Binary64, a, b)
	fmt.Println("sum:", fpstudy.Binary64.String(s))
	fmt.Println("error:", fpstudy.Binary64.String(err))
	// Output:
	// sum: 1e+16
	// error: 1
}

// Interval arithmetic produces rigorous enclosures via the directed
// rounding modes.
func ExampleIntervalArith() {
	a := fpstudy.NewIntervalArith(fpstudy.Binary64)
	n, _ := fpstudy.ParseExpr("x*x")
	res := a.EvalExpr(n, map[string]fpstudy.Interval{"x": a.FromFloat64(3)})
	var e fpstudy.Env
	fmt.Println(a.Contains(res, fpstudy.Binary64.FromFloat64(&e, 9)))
	// Output:
	// true
}

// The VM runs assembly "binaries" the monitor can spy on.
func ExampleVM() {
	prog, _ := fpstudy.Assemble("double", `
		load  x
		loadc 2
		mul
		ret
	`)
	vm := fpstudy.NewVM(fpstudy.Binary64)
	var e fpstudy.Env
	res, _ := vm.Run(prog, map[string]uint64{"x": fpstudy.Binary64.FromFloat64(&e, 21)})
	fmt.Println(fpstudy.Binary64.String(res))
	// Output:
	// 42
}

// Static analysis flags the hazards the quiz shows developers miss.
func ExampleLintExpr() {
	n, _ := fpstudy.ParseExpr("1/(a - b)")
	for _, f := range fpstudy.LintExpr(n) {
		fmt.Println(f.Rule)
	}
	// Output:
	// division-by-difference
}
