//go:build ignore

// Query smoke test: the end-to-end contract of the ad-hoc query
// surface through the real binaries. Generates an n=10000 cohort with
// fpgen in both serializations, then runs the same expressions through
// `fpreport -query` (regenerated in-process, loaded row JSON, and
// streamed .fpds) and `fpsurvey slice` (both file formats), requiring
// every pair of runs to print byte-identical tables — the streaming
// out-of-core path, the in-memory path, and both front-ends must
// agree exactly. Also asserts a slice count cross-checks against
// `fpsurvey -tally` on the same file, tying the engine to the
// row-loop surface it replaced.
//
// Run via `make query-smoke` (or `go run scripts/query_smoke.go` from
// the repo root). Exits 0 and prints PASS on success.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "query-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func run(bin string, args ...string) []byte {
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fail("running %s %v: %v", filepath.Base(bin), args, err)
	}
	return out.Bytes()
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-query-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	fpgen := filepath.Join(tmp, "fpgen")
	fpreport := filepath.Join(tmp, "fpreport")
	fpsurvey := filepath.Join(tmp, "fpsurvey")
	for _, b := range []struct{ bin, pkg string }{
		{fpgen, "./cmd/fpgen"}, {fpreport, "./cmd/fpreport"}, {fpsurvey, "./cmd/fpsurvey"},
	} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fail("building %s: %v", b.pkg, err)
		}
	}

	const n = "10000"
	binPath := filepath.Join(tmp, "cohort.fpds")
	jsonPath := filepath.Join(tmp, "cohort.json")
	run(fpgen, "-n", n, "-seed", "42", "-o", binPath)
	run(fpgen, "-n", n, "-seed", "42", "-format", "json", "-o", jsonPath)

	exprs := []string{
		"//count",
		"susp.invalid>=4/bg.contrib_size/count",
		"/bg.formal_training/mean:core.score",
		"bg.formal_training!=None/bg.contrib_size/mean:susp.invalid",
	}
	for _, expr := range exprs {
		// Every route to the same answer: regenerated in-process,
		// streamed off the shard, loaded from row JSON, and through both
		// front-ends.
		want := run(fpreport, "-n", n, "-seed", "42", "-query", expr)
		if len(want) == 0 {
			fail("in-process fpreport -query %q produced no output", expr)
		}
		routes := [][]string{
			{fpreport, "-data", binPath, "-query", expr},
			{fpreport, "-data", jsonPath, "-query", expr},
			{fpsurvey, "slice", expr, binPath},
			{fpsurvey, "slice", expr, jsonPath},
		}
		for _, r := range routes {
			if got := run(r[0], r[1:]...); !bytes.Equal(got, want) {
				fail("%s %v output differs from the in-process run for %q:\n got: %s\nwant: %s",
					filepath.Base(r[0]), r[1:], expr, got, want)
			}
		}
	}

	// Cross-check against the row-loop tally surface: the slice total
	// over the full cohort must equal the cohort size fpsurvey -tally
	// reports per answer.
	out := string(run(fpsurvey, "slice", "//count", binPath))
	if !strings.Contains(out, n) {
		fail("slice //count does not report the cohort size:\n%s", out)
	}

	fmt.Printf("query-smoke: PASS: %d expressions identical across in-process, streamed .fpds, loaded .json, fpreport -query, and fpsurvey slice at n=%s\n",
		len(exprs), n)
}
