//go:build ignore

// Trace smoke test: builds fpgen, runs a small (n=199) generation with
// -trace, then validates the emitted file as Chrome trace-event JSON —
// it must parse, carry the traceEvents array, and contain all four
// pipeline stages of an fpgen run (draw-profiles, calibrate,
// sample-responses, write) plus per-worker lane metadata. Exercises the
// full path a Perfetto/chrome://tracing user depends on: flag parsing,
// tracer install, event emission through the pipeline, export.
//
// Run via `make trace-smoke` (or `go run scripts/trace_smoke.go` from
// the repo root). Exits 0 and prints PASS on success.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trace-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-trace-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fpgen")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fpgen")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fail("building fpgen: %v", err)
	}

	tracePath := filepath.Join(tmp, "run.trace.json")
	gen := exec.Command(bin,
		"-n", "199",
		"-trace", tracePath,
		"-o", filepath.Join(tmp, "out.json"))
	gen.Stderr = os.Stderr
	if err := gen.Run(); err != nil {
		fail("running fpgen -trace: %v", err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		fail("reading trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("trace is not valid Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("trace has an empty traceEvents array")
	}

	// The four pipeline stages of an fpgen main-cohort run must appear
	// as stage events.
	stages := map[string]bool{}
	cats := map[string]int{}
	threadNames := 0
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		if ev.Cat == "stage" {
			stages[ev.Name] = true
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames++
		}
	}
	for _, want := range []string{"draw-profiles", "calibrate", "sample-responses", "write"} {
		if !stages[want] {
			var got []string
			for s := range stages {
				got = append(got, s)
			}
			fail("trace is missing pipeline stage %q (stages present: %s)",
				want, strings.Join(got, " "))
		}
	}
	if cats["worker"] == 0 {
		fail("trace has no per-worker events")
	}
	if threadNames == 0 {
		fail("trace has no thread_name lane metadata")
	}

	fmt.Printf("trace-smoke: PASS: %d events (%d stage, %d worker, %d shard), all four pipeline stages present\n",
		len(doc.TraceEvents), cats["stage"], cats["worker"], cats["shard"])
}
