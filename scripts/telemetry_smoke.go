//go:build ignore

// Telemetry smoke test: builds fpgen, starts it with -telemetry on an
// ephemeral port and a cohort large enough to keep it running for a
// few seconds, then polls /debug/vars until the "fpstudy" expvar shows
// live pipeline metrics. Exercises the real HTTP surface end to end —
// flag parsing, listener startup, expvar publication, metric wiring.
//
// Run via `make telemetry-smoke` (or `go run scripts/telemetry_smoke.go`
// from the repo root). Exits 0 and prints PASS on success.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetry-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-telemetry-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	// Build a real binary rather than `go run`: killing `go run` can
	// orphan the child process, and we need to terminate fpgen cleanly
	// once the probe has seen what it came for.
	bin := filepath.Join(tmp, "fpgen")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fpgen")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fail("building fpgen: %v", err)
	}

	// A cohort this size runs for several seconds (~10-15k
	// respondents/sec serial), giving the probe a live server to poll.
	gen := exec.Command(bin,
		"-n", "300000", "-workers", "1",
		"-telemetry", "127.0.0.1:0",
		"-o", filepath.Join(tmp, "out.json"))
	stderr, err := gen.StderrPipe()
	if err != nil {
		fail("%v", err)
	}
	if err := gen.Start(); err != nil {
		fail("starting fpgen: %v", err)
	}
	defer func() {
		gen.Process.Kill()
		gen.Wait()
	}()

	// fpgen announces the bound address on stderr:
	//   fpgen: telemetry on http://127.0.0.1:PORT/debug/vars ...
	addrRE := regexp.MustCompile(`telemetry on http://([0-9.:]+)/debug/vars`)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		fail("fpgen never announced a telemetry address")
	}
	go func() { // keep draining so fpgen never blocks on stderr
		for sc.Scan() {
		}
	}()

	// Poll /debug/vars until the fpstudy var carries live pipeline
	// metrics (the respondents counter advancing proves the full
	// registry -> expvar -> HTTP path).
	url := "http://" + addr + "/debug/vars"
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var vars struct {
			Fpstudy struct {
				Metrics struct {
					Counters map[string]int64 `json:"counters"`
				} `json:"metrics"`
				Spans []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"fpstudy"`
		}
		err = json.NewDecoder(resp.Body).Decode(&vars)
		resp.Body.Close()
		if err != nil {
			fail("decoding %s: %v", url, err)
		}
		if done := vars.Fpstudy.Metrics.Counters["pipeline.respondents"]; done > 0 {
			var spans []string
			for _, s := range vars.Fpstudy.Spans {
				spans = append(spans, s.Name)
			}
			fmt.Printf("telemetry-smoke: PASS: %s serves fpstudy metrics "+
				"(pipeline.respondents=%d, spans=[%s])\n",
				url, done, strings.Join(spans, " "))
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fail("%s never served a live pipeline.respondents counter", url)
}
