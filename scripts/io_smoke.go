//go:build ignore

// I/O smoke test: the end-to-end contract of the dataset file formats.
// Generates an n=10000 cohort with fpgen in both serializations (FPDS
// binary via .fpds auto-detection, row JSON via -format), then runs
// `fpreport -data <file> -all` off each file and requires the full
// report — every figure plus the headline claims — to match an
// in-process `fpreport -all` regeneration at the same seed and size,
// byte for byte. Exercises the whole path a dataset consumer depends
// on: columnar generation, parallel binary encode, format sniffing,
// streaming decode, grading off loaded columns, reporting.
//
// Run via `make io-smoke` (or `go run scripts/io_smoke.go` from the
// repo root). Exits 0 and prints PASS on success.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "io-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// run executes the binary, captures stdout, and returns it with the
// exit code. Claims legitimately FAIL at non-paper cohort sizes
// (fpreport exits 1 then); the smoke test asserts the loaded-data and
// regenerated runs agree, including on that verdict.
func run(bin string, args ...string) ([]byte, int) {
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			fail("running %s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return out.Bytes(), code
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-io-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	fpgen := filepath.Join(tmp, "fpgen")
	fpreport := filepath.Join(tmp, "fpreport")
	for _, b := range []struct{ bin, pkg string }{{fpgen, "./cmd/fpgen"}, {fpreport, "./cmd/fpreport"}} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fail("building %s: %v", b.pkg, err)
		}
	}

	const n = "10000"
	binPath := filepath.Join(tmp, "cohort.fpds")
	jsonPath := filepath.Join(tmp, "cohort.json")
	if _, code := run(fpgen, "-n", n, "-seed", "42", "-o", binPath); code != 0 {
		fail("fpgen binary write exited %d", code)
	}
	if _, code := run(fpgen, "-n", n, "-seed", "42", "-format", "json", "-o", jsonPath); code != 0 {
		fail("fpgen json write exited %d", code)
	}
	head := make([]byte, 4)
	f, err := os.Open(binPath)
	if err != nil {
		fail("%v", err)
	}
	if _, err := f.Read(head); err != nil || string(head) != "FPDS" {
		fail("%s does not start with the FPDS magic (got %q)", binPath, head)
	}
	f.Close()

	want, wantCode := run(fpreport, "-all", "-n", n, "-seed", "42")
	if len(want) == 0 {
		fail("in-process fpreport produced no output")
	}
	for _, data := range []string{binPath, jsonPath} {
		got, code := run(fpreport, "-data", data, "-all", "-seed", "42")
		if code != wantCode {
			fail("fpreport -data %s exited %d, in-process run exited %d", data, code, wantCode)
		}
		if !bytes.Equal(got, want) {
			fail("fpreport -data %s output differs from the in-process run (%d vs %d bytes)",
				data, len(got), len(want))
		}
	}

	st, _ := os.Stat(binPath)
	jst, _ := os.Stat(jsonPath)
	fmt.Printf("io-smoke: PASS: n=%s reports identical from .fpds (%.1f MB) and .json (%.1f MB) to the in-process run (%d bytes of report)\n",
		n, float64(st.Size())/(1<<20), float64(jst.Size())/(1<<20), len(want))
}
