#!/bin/sh
# check.sh — the repo's full verification gate: build, vet, and the
# complete test suite under the race detector. Run from the repo root
# (or let the cd below handle it).
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> all checks passed"
