#!/bin/sh
# check.sh — the repo's full verification gate: build, vet, and the
# complete test suite under the race detector. Run from the repo root
# (or let the cd below handle it).
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# Optional memory gate: CHECK_BENCH_MEM=1 also runs the zero-allocation
# tests and the allocation-reporting benchmarks of the sampling/grading
# hot loops (make bench-mem). Off by default — the same assertions run
# (race-enabled) in the suite above; this stage re-runs them without
# the race detector's allocator interference and prints allocs/op.
if [ "${CHECK_BENCH_MEM:-0}" = "1" ]; then
	echo "==> make bench-mem"
	make bench-mem
fi

# Optional I/O smoke gate: CHECK_IO_SMOKE=1 generates an n=10000
# cohort in both file formats with the real fpgen binary and requires
# `fpreport -data` off each file to reproduce the in-process report
# byte for byte (make io-smoke). Off by default — the same contract is
# pinned in-process at n=199 by the golden tests in the suite above;
# this stage additionally exercises the built binaries and real files.
if [ "${CHECK_IO_SMOKE:-0}" = "1" ]; then
	echo "==> make io-smoke"
	make io-smoke
fi

# Optional query smoke gate: CHECK_QUERY_SMOKE=1 generates an n=10000
# cohort in both file formats and requires the same query expressions
# to print byte-identical tables through every route: fpreport -query
# in-process, off loaded row JSON, streamed off the .fpds shard, and
# fpsurvey slice on both files (make query-smoke). Off by default —
# the engine's determinism and mem/stream parity are pinned in-process
# by the property and golden tests above; this stage additionally
# exercises the built binaries, the expression parser surface, and
# real files.
if [ "${CHECK_QUERY_SMOKE:-0}" = "1" ]; then
	echo "==> make query-smoke"
	make query-smoke
fi

# Optional SLO smoke gate: CHECK_SLO_SMOKE=1 runs a small fpbench with
# -telemetry, scrapes /metrics mid-run, validates the Prometheus
# exposition, and asserts the report's per-stage latency quantiles
# (make slo-smoke). Off by default — the same exposition and quantile
# logic is unit-tested in internal/telemetry; this stage additionally
# exercises the real HTTP surface and the built binary.
if [ "${CHECK_SLO_SMOKE:-0}" = "1" ]; then
	echo "==> make slo-smoke"
	make slo-smoke
fi

# Optional perf-forensics smoke gate: CHECK_STAT_SMOKE=1 drives the
# observatory end to end with real binaries: ledger records from fpgen
# and fpbench, a seeded grade-stage regression attributed by fpstat
# diff, a red compare gate leaving pprof profiles and a forensics
# report, and fpstat trend over truncated history/ledger files (make
# stat-smoke). Off by default — the attribution and drift statistics
# are unit-tested in internal/benchcmp and cmd/fpstat; this stage
# additionally exercises the built binaries and the on-disk artifacts.
if [ "${CHECK_STAT_SMOKE:-0}" = "1" ]; then
	echo "==> make stat-smoke"
	make stat-smoke
fi

# Optional distributed smoke gate: CHECK_DIST_SMOKE=1 generates an
# n=30000 cohort single-process and with `fpgen -distribute=3`, and
# runs the full report both ways, requiring the .fpds shards, report
# bytes, and exit codes to be identical, and the run ledger to record
# the topology (make dist-smoke). Off by default — the same
# bit-reproducibility contract is pinned in-process (and across worker
# processes) by TestGoldenDistributedInvariance in the suite above;
# this stage additionally exercises the built binaries, the
# -distribute flag surface, and real files.
if [ "${CHECK_DIST_SMOKE:-0}" = "1" ]; then
	echo "==> make dist-smoke"
	make dist-smoke
fi

# Optional perf-regression gate: CHECK_BENCH_GATE=1 re-times the
# pipeline (n=199 and n=10000) and compares against the committed
# BENCH_pipeline.json with fpbench compare, failing on regressions
# beyond the noise bands. Off by default — it takes a few minutes and
# only means something on a quiet machine.
if [ "${CHECK_BENCH_GATE:-0}" = "1" ]; then
	echo "==> make bench-gate"
	make bench-gate
fi

echo "==> all checks passed"
