//go:build ignore

// SLO smoke test: builds fpbench, starts a small (n=199) benchmark run
// with -telemetry on an ephemeral port, scrapes /metrics while it
// runs, and validates the whole latency observatory end to end:
//
//  1. the /metrics exposition parses as Prometheus text format 0.0.4
//     (legal metric names, parseable values, cumulative histogram
//     buckets ending in +Inf, _sum/_count present), and
//  2. it carries live latency histograms (a nonzero
//     fpstudy_latency_*_seconds_count), and
//  3. the report fpbench writes carries per-stage quantile tables with
//     ordered quantiles (p50 <= p90 <= p99 <= p999).
//
// Run via `make slo-smoke` (or `go run scripts/slo_smoke.go` from the
// repo root). Exits 0 and prints PASS on success.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "slo-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// metricLine matches one exposition sample: name, optional labels,
// value. Timestamps are not emitted by the telemetry server.
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]Inf|[0-9eE.+-]+)$`)

// leLabel extracts the le bucket boundary from a label set.
var leLabel = regexp.MustCompile(`le="([^"]+)"`)

// validateExposition is a minimal Prometheus text-format 0.0.4 parser:
// every non-comment line must be a well-formed sample, and every
// histogram declared by a # TYPE line must have non-decreasing
// cumulative buckets ending in +Inf, with matching _sum and _count
// series. Returns a description of the first violation, or "".
func validateExposition(text string) string {
	types := map[string]string{}
	samples := map[string]float64{}
	buckets := map[string][]struct {
		le    float64
		count float64
	}{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Sprintf("malformed sample line %q", line)
		}
		name, labels := m[1], m[2]
		val, err := strconv.ParseFloat(strings.Replace(m[3], "Inf", "inf", 1), 64)
		if err != nil {
			return fmt.Sprintf("unparseable value in %q: %v", line, err)
		}
		samples[name] = val
		if strings.HasSuffix(name, "_bucket") {
			lm := leLabel.FindStringSubmatch(labels)
			if lm == nil {
				return fmt.Sprintf("bucket sample without le label: %q", line)
			}
			le, err := strconv.ParseFloat(strings.Replace(lm[1], "+Inf", "+inf", 1), 64)
			if err != nil {
				return fmt.Sprintf("unparseable le in %q: %v", line, err)
			}
			base := strings.TrimSuffix(name, "_bucket")
			buckets[base] = append(buckets[base], struct{ le, count float64 }{le, val})
		}
	}
	// # TYPE lines drive the histogram contract.
	for _, line := range strings.Split(text, "\n") {
		var name, kind string
		if n, _ := fmt.Sscanf(line, "# TYPE %s %s", &name, &kind); n != 2 || kind != "histogram" {
			continue
		}
		types[name] = kind
		bs := buckets[name]
		if len(bs) == 0 {
			return fmt.Sprintf("histogram %s has no buckets", name)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				return fmt.Sprintf("histogram %s buckets not in le order", name)
			}
			if bs[i].count < bs[i-1].count {
				return fmt.Sprintf("histogram %s cumulative counts decrease at le=%g", name, bs[i].le)
			}
		}
		last := bs[len(bs)-1]
		if !strings.Contains(fmt.Sprint(last.le), "Inf") && last.le < 1e308 {
			return fmt.Sprintf("histogram %s does not end in +Inf (ends %g)", name, last.le)
		}
		count, ok := samples[name+"_count"]
		if !ok {
			return fmt.Sprintf("histogram %s missing _count", name)
		}
		if _, ok := samples[name+"_sum"]; !ok {
			return fmt.Sprintf("histogram %s missing _sum", name)
		}
		if count != last.count {
			return fmt.Sprintf("histogram %s _count=%g != +Inf bucket %g", name, count, last.count)
		}
	}
	if len(types) == 0 {
		return "no histograms in exposition"
	}
	return ""
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-slo-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fpbench")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fpbench")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fail("building fpbench: %v", err)
	}

	// n=199 with enough reps that the run stays alive for a few seconds
	// of scraping (~3-4ms per rep serial); -io=false keeps the run on
	// the pipeline stages the SLO gate covers.
	report := filepath.Join(tmp, "slo.json")
	bench := exec.Command(bin,
		"-n", "199", "-workers", "1", "-reps", "1000", "-io=false",
		"-telemetry", "127.0.0.1:0", "-o", report)
	stderr, err := bench.StderrPipe()
	if err != nil {
		fail("%v", err)
	}
	if err := bench.Start(); err != nil {
		fail("starting fpbench: %v", err)
	}
	defer func() {
		bench.Process.Kill()
		bench.Wait()
	}()

	addrRE := regexp.MustCompile(`telemetry on http://([0-9.:]+)/debug/vars`)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		fail("fpbench never announced a telemetry address")
	}
	go func() { // keep draining so fpbench never blocks on stderr
		for sc.Scan() {
		}
	}()

	// Scrape /metrics until it shows live latency observations, then
	// validate the whole exposition.
	url := "http://" + addr + "/metrics"
	countRE := regexp.MustCompile(`(?m)^fpstudy_latency_[a-z_]+_seconds_count ([1-9][0-9]*)$`)
	var exposition string
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fail("reading %s: %v", url, err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			fail("%s Content-Type = %q, want text/plain exposition", url, ct)
		}
		if countRE.Match(body) {
			exposition = string(body)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if exposition == "" {
		fail("%s never served a nonzero fpstudy_latency_*_seconds_count", url)
	}
	if msg := validateExposition(exposition); msg != "" {
		fail("exposition check: %s", msg)
	}
	liveStages := countRE.FindAllString(exposition, -1)

	// Let the run finish and check the report's quantile tables.
	if err := bench.Wait(); err != nil {
		fail("fpbench exited: %v", err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		fail("%v", err)
	}
	var rep struct {
		SchemaVersion int `json:"schema_version"`
		Runs          []struct {
			N       int `json:"n"`
			Latency []struct {
				Stage  string  `json:"stage"`
				Count  int64   `json:"count"`
				P50NS  float64 `json:"p50_ns"`
				P90NS  float64 `json:"p90_ns"`
				P99NS  float64 `json:"p99_ns"`
				P999NS float64 `json:"p999_ns"`
			} `json:"latency"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		fail("parsing %s: %v", report, err)
	}
	if rep.SchemaVersion < 6 {
		fail("report schema_version = %d, want >= 6 (latency section)", rep.SchemaVersion)
	}
	if len(rep.Runs) == 0 || len(rep.Runs[0].Latency) == 0 {
		fail("report carries no per-stage latency quantiles")
	}
	var stages []string
	for _, s := range rep.Runs[0].Latency {
		if s.Count <= 0 {
			fail("stage %s: count = %d", s.Stage, s.Count)
		}
		if s.P50NS > s.P90NS || s.P90NS > s.P99NS || s.P99NS > s.P999NS {
			fail("stage %s: quantiles out of order: p50=%g p90=%g p99=%g p999=%g",
				s.Stage, s.P50NS, s.P90NS, s.P99NS, s.P999NS)
		}
		stages = append(stages, s.Stage)
	}
	sort.Strings(stages)
	fmt.Printf("slo-smoke: PASS: %s exposition valid (%d live latency series); "+
		"report has quantile tables for [%s]\n",
		url, len(liveStages), strings.Join(stages, " "))
}
