//go:build ignore

// Perf-forensics smoke test: drives the whole observatory end to end
// with real binaries and a seeded regression, proving the pipeline
// from red gate to named culprit:
//
//  1. fpgen and fpbench append well-formed run-ledger records
//     (including fpgen's dataset sha256 golden hash) via -runlog;
//  2. a 20% wall-time regression injected into the grade stage of a
//     real fpbench report is attributed to run/grade by `fpstat diff`;
//  3. `fpbench compare` fails the gate on that pair (exit 1) and
//     leaves CPU+heap pprof profiles plus a markdown forensics report
//     naming run/grade on disk;
//  4. `fpstat trend` renders drift over the benchmark history and the
//     ledger — tolerating a truncated final line in both — and
//     surfaces the compare failure as a nonzero-exit line.
//
// Run via `make stat-smoke` (or `go run scripts/stat_smoke.go` from
// the repo root). Exits 0 and prints PASS on success.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stat-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// run executes a built binary, returning combined output and exit
// status; any status other than wantStatus fails the smoke.
func run(wantStatus int, bin string, args ...string) string {
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	status := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			fail("%s %s: %v", filepath.Base(bin), strings.Join(args, " "), err)
		}
		status = ee.ExitCode()
	}
	if status != wantStatus {
		fail("%s %s: exit %d, want %d\n%s", filepath.Base(bin), strings.Join(args, " "), status, wantStatus, out)
	}
	return string(out)
}

// injectGradeSlowdown loads an fpbench report and seeds the
// regression under test: every run's grade span absorbs an extra 20%
// of that run's wall time, with the root span, best_seconds, and
// throughput adjusted to match — exactly what a real grading
// regression would look like in a report.
func injectGradeSlowdown(oldPath, newPath string) {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		fail("%v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		fail("parsing %s: %v", oldPath, err)
	}
	runs, _ := rep["runs"].([]any)
	if len(runs) == 0 {
		fail("%s has no runs", oldPath)
	}
	for _, ra := range runs {
		r := ra.(map[string]any)
		best := r["best_seconds"].(float64)
		delta := 0.20 * best
		spans, _ := r["spans"].([]any)
		if len(spans) == 0 {
			fail("%s run has no spans", oldPath)
		}
		root := spans[0].(map[string]any)
		var graded bool
		for _, ca := range root["children"].([]any) {
			c := ca.(map[string]any)
			if c["name"] == "grade" {
				c["seconds"] = c["seconds"].(float64) + delta
				graded = true
			}
		}
		if !graded {
			fail("%s run has no grade span", oldPath)
		}
		root["seconds"] = root["seconds"].(float64) + delta
		r["best_seconds"] = best + delta
		r["respondents_per_sec"] = r["n"].(float64) / (best + delta)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	if err := os.WriteFile(newPath, append(out, '\n'), 0o644); err != nil {
		fail("%v", err)
	}
}

// appendLines tacks raw lines (no trailing newline handling — callers
// pass exactly what should land in the file) onto a JSONL file.
func appendLines(path string, lines ...string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	for _, l := range lines {
		if _, err := f.WriteString(l); err != nil {
			fail("%v", err)
		}
	}
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-stat-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	bins := map[string]string{}
	for _, tool := range []string{"fpgen", "fpbench", "fpstat"} {
		bin := filepath.Join(tmp, tool)
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fail("building %s: %v", tool, err)
		}
		bins[tool] = bin
	}

	ledger := filepath.Join(tmp, "ledger.jsonl")
	hist := filepath.Join(tmp, "hist.jsonl")
	oldRep := filepath.Join(tmp, "old.json")
	newRep := filepath.Join(tmp, "new.json")
	forensics := filepath.Join(tmp, "forensics")

	// 1. Real invocations append ledger records.
	run(0, bins["fpgen"], "-n", "500", "-o", filepath.Join(tmp, "cohort.json"), "-runlog", ledger)
	run(0, bins["fpbench"], "-n", "199", "-workers", "1", "-reps", "1",
		"-io=false", "-query=false", "-o", oldRep, "-runlog", ledger)
	ldata, err := os.ReadFile(ledger)
	if err != nil {
		fail("ledger never written: %v", err)
	}
	if !strings.Contains(string(ldata), `"dataset_sha256"`) {
		fail("fpgen ledger record carries no dataset_sha256 golden hash")
	}

	// 2. Seed the regression; fpstat diff must name the stage.
	injectGradeSlowdown(oldRep, newRep)
	diff := run(0, bins["fpstat"], "diff", oldRep, newRep)
	if !strings.Contains(diff, "top contributor: run/grade") {
		fail("fpstat diff did not attribute the regression to run/grade:\n%s", diff)
	}

	// 3. The gate must go red and leave forensics behind.
	cmp := run(1, bins["fpbench"], "compare",
		"-forensics", forensics, "-history", hist, "-runlog", ledger, oldRep, newRep)
	for _, f := range []string{"cpu.pprof", "heap.pprof", "forensics.md"} {
		if _, err := os.Stat(filepath.Join(forensics, f)); err != nil {
			fail("compare left no %s: %v\ncompare output:\n%s", f, err, cmp)
		}
	}
	md, err := os.ReadFile(filepath.Join(forensics, "forensics.md"))
	if err != nil {
		fail("%v", err)
	}
	if !strings.Contains(string(md), "run/grade") {
		fail("forensics.md does not name run/grade:\n%s", md)
	}

	// 4. Trend over history+ledger, both ending in a truncated line
	// (a crashed writer must never take the observatory down). The
	// history needs >=3 points per series before drift can flag, so
	// replay the entry compare appended with a wiggle and a collapse.
	hdata, err := os.ReadFile(hist)
	if err != nil {
		fail("compare never appended to history: %v", err)
	}
	entry := strings.TrimRight(string(hdata), "\n")
	wiggle := strings.Replace(entry, `"seed":`, `"gc_count":0,"seed":`, 1) // harmless dup field: same runs, reparsed
	collapsed := entry
	var e map[string]any
	if err := json.Unmarshal([]byte(entry), &e); err != nil {
		fail("parsing history entry: %v", err)
	}
	for _, ra := range e["runs"].([]any) {
		r := ra.(map[string]any)
		r["respondents_per_sec"] = r["respondents_per_sec"].(float64) * 0.5
	}
	if b, err := json.Marshal(e); err == nil {
		collapsed = string(b)
	}
	appendLines(hist, wiggle+"\n", collapsed+"\n", `{"timestamp":"2026-01-01T`)
	appendLines(ledger, `{"schema":1,"tool":"fpgen","wall`)

	trend := run(0, bins["fpstat"], "trend", "-history", hist, "-ledger", ledger)
	for _, want := range []string{
		"3 entries (1 line(s) skipped)",
		"3 records (1 line(s) skipped)",
		"respondents_per_sec",
		"drifted points:",
		"nonzero exit: fpbench",
	} {
		if !strings.Contains(trend, want) {
			fail("fpstat trend output missing %q:\n%s", want, trend)
		}
	}

	fmt.Println("stat-smoke: PASS: ledger recorded fpgen+fpbench (golden dataset hash present); " +
		"fpstat diff attributed the seeded 20% slowdown to run/grade; " +
		"fpbench compare went red leaving cpu.pprof/heap.pprof/forensics.md naming run/grade; " +
		"fpstat trend rendered drift over truncated history and ledger")
}
