//go:build ignore

// Distributed-pipeline smoke test: the end-to-end bit-reproducibility
// contract of -distribute with real binaries. Generates an n=30000
// cohort (spanning four FPDS blocks) single-process and with
// `fpgen -distribute=3`, requiring the .fpds files to be byte-equal —
// same for the student cohort — then runs `fpreport -all` both ways
// and requires stdout and exit codes to match byte for byte. Finally
// checks the run ledger recorded the distributed topology.
//
// Run via `make dist-smoke` (or `go run scripts/dist_smoke.go` from
// the repo root). Exits 0 and prints PASS on success.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dist-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// run executes the binary, captures stdout, and returns it with the
// exit code. Claims legitimately FAIL at non-paper cohort sizes
// (fpreport exits 1 then); the smoke test asserts the distributed and
// single-process runs agree, including on that verdict.
func run(bin string, args ...string) ([]byte, int) {
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			fail("running %s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return out.Bytes(), code
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	return data
}

func main() {
	tmp, err := os.MkdirTemp("", "fpstudy-dist-smoke-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(tmp)

	fpgen := filepath.Join(tmp, "fpgen")
	fpreport := filepath.Join(tmp, "fpreport")
	for _, b := range []struct{ bin, pkg string }{{fpgen, "./cmd/fpgen"}, {fpreport, "./cmd/fpreport"}} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fail("building %s: %v", b.pkg, err)
		}
	}

	// n=30000 spans four FPDS blocks, so -distribute=3 genuinely fans
	// the cohort out across all three worker processes.
	const n, nStudents = "30000", "3000"
	single := filepath.Join(tmp, "single.fpds")
	dist := filepath.Join(tmp, "dist.fpds")
	if _, code := run(fpgen, "-n", n, "-seed", "42", "-o", single); code != 0 {
		fail("single-process fpgen exited %d", code)
	}
	ledger := filepath.Join(tmp, "ledger.jsonl")
	if _, code := run(fpgen, "-n", n, "-seed", "42", "-distribute", "3", "-runlog", ledger, "-o", dist); code != 0 {
		fail("fpgen -distribute=3 exited %d", code)
	}
	if !bytes.Equal(mustRead(single), mustRead(dist)) {
		fail("fpgen -distribute=3 .fpds differs from the single-process shard")
	}

	singleStu := filepath.Join(tmp, "single-students.fpds")
	distStu := filepath.Join(tmp, "dist-students.fpds")
	if _, code := run(fpgen, "-students", "-n", nStudents, "-seed", "43", "-o", singleStu); code != 0 {
		fail("single-process student fpgen exited %d", code)
	}
	if _, code := run(fpgen, "-students", "-n", nStudents, "-seed", "43", "-distribute", "3", "-o", distStu); code != 0 {
		fail("student fpgen -distribute=3 exited %d", code)
	}
	if !bytes.Equal(mustRead(singleStu), mustRead(distStu)) {
		fail("student fpgen -distribute=3 .fpds differs from the single-process shard")
	}

	// Full report — generation, grading, all 22 figures, claims — must
	// agree byte for byte, including the claims verdict (exit code).
	want, wantCode := run(fpreport, "-all", "-n", n, "-nstudents", nStudents, "-seed", "42")
	if len(want) == 0 {
		fail("single-process fpreport produced no output")
	}
	got, code := run(fpreport, "-all", "-n", n, "-nstudents", nStudents, "-seed", "42", "-distribute", "3")
	if code != wantCode {
		fail("fpreport -distribute=3 exited %d, single-process run exited %d", code, wantCode)
	}
	if !bytes.Equal(got, want) {
		fail("fpreport -distribute=3 output differs from the single-process run (%d vs %d bytes)", len(got), len(want))
	}

	// The distributed fpgen run above logged to the ledger; its record
	// must carry the topology.
	ledgerData := mustRead(ledger)
	if !bytes.Contains(ledgerData, []byte(`"topology"`)) || !bytes.Contains(ledgerData, []byte(`"procs":3`)) {
		fail("run ledger does not record the distributed topology: %s", ledgerData)
	}

	st, _ := os.Stat(dist)
	fmt.Printf("dist-smoke: PASS: n=%s dataset (%.1f MB), students, and the full report are byte-identical at -distribute=3 (%d bytes of report, exit %d)\n",
		n, float64(st.Size())/(1<<20), len(want), wantCode)
}
