// Package fpstudy reproduces "Do Developers Understand IEEE Floating
// Point?" (Dinda & Hetland, IPDPS 2018) as a runnable system: a
// from-scratch IEEE 754 softfloat oracle, a compiler-optimization
// simulator, a runtime exception monitor, an arbitrary-precision shadow
// executor, the paper's survey instrument with mechanically derived
// answers, a calibrated synthetic respondent population, and the
// analysis pipeline that regenerates every figure in the paper.
//
// This package is the public facade: it re-exports the main types and
// entry points from the internal packages. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Quick start:
//
//	study := fpstudy.DefaultStudy()
//	results := study.Run()
//	fmt.Println(results.Figure12().String())
//
// Or grade yourself:
//
//	for _, q := range fpstudy.CoreQuestions() {
//	    fmt.Println(q.Snippet, q.Prompt)
//	    res := q.Oracle()
//	    fmt.Println("answer:", res.Holds, "—", res.Witness)
//	}
package fpstudy

import (
	"fpstudy/internal/audit"
	"fpstudy/internal/core"
	"fpstudy/internal/eft"
	"fpstudy/internal/expr"
	"fpstudy/internal/fpvm"
	"fpstudy/internal/ieee754"
	"fpstudy/internal/interval"
	"fpstudy/internal/kernels"
	"fpstudy/internal/lint"
	"fpstudy/internal/monitor"
	"fpstudy/internal/mpfloat"
	"fpstudy/internal/optsim"
	"fpstudy/internal/quiz"
	"fpstudy/internal/respondent"
	"fpstudy/internal/survey"
	"fpstudy/internal/tuner"
)

// --- IEEE 754 softfloat (internal/ieee754) ---

// Format describes a binary interchange format.
type Format = ieee754.Format

// Env is a floating point environment: rounding mode, sticky flags,
// FTZ/DAZ controls, and an optional per-operation observer.
type Env = ieee754.Env

// Flags is a set of exception flags.
type Flags = ieee754.Flags

// RoundingMode selects a rounding-direction attribute.
type RoundingMode = ieee754.RoundingMode

// Num pairs an encoding with its format for value-like ergonomics.
type Num = ieee754.Num

// The three standard interchange formats, plus the ML-oriented
// bfloat16. Custom formats can be built directly: Format{ExpBits: 4,
// FracBits: 3, Name: "fp8"}.
var (
	Binary16 = ieee754.Binary16
	Binary32 = ieee754.Binary32
	Binary64 = ieee754.Binary64
	Bfloat16 = ieee754.Bfloat16
)

// Exception flags (the paper's suspicion-quiz conditions map to these).
const (
	FlagInvalid   = ieee754.FlagInvalid
	FlagDivByZero = ieee754.FlagDivByZero
	FlagOverflow  = ieee754.FlagOverflow
	FlagUnderflow = ieee754.FlagUnderflow
	FlagInexact   = ieee754.FlagInexact
	FlagDenormal  = ieee754.FlagDenormal
)

// Rounding modes.
const (
	NearestEven    = ieee754.NearestEven
	NearestAway    = ieee754.NearestAway
	TowardZero     = ieee754.TowardZero
	TowardPositive = ieee754.TowardPositive
	TowardNegative = ieee754.TowardNegative
)

// N constructs a Num in format f from a float64.
func N(f Format, v float64) Num { return ieee754.N(f, v) }

// --- Expressions and the optimization simulator ---

// ExprNode is an arithmetic expression tree node.
type ExprNode = expr.Node

// ParseExpr parses an arithmetic expression ("a*(b + c) - sqrt(d)").
func ParseExpr(src string) (ExprNode, error) { return expr.Parse(src) }

// OptConfig is a compiler/hardware optimization configuration.
type OptConfig = optsim.Config

// OptLevel is a -O level.
type OptLevel = optsim.Level

// OptVerdict is the result of a compliance check.
type OptVerdict = optsim.Verdict

// OptForLevel returns the configuration for -O0..-O3.
func OptForLevel(l OptLevel) OptConfig { return optsim.ForLevel(l) }

// FastMath returns the -ffast-math configuration.
func FastMath() OptConfig { return optsim.FastMath() }

// CheckCompliance evaluates an expression under strict IEEE semantics
// and under a configuration, reporting whether any corpus input
// diverges.
func CheckCompliance(f Format, n ExprNode, cfg OptConfig, corpusSize int, seed int64) OptVerdict {
	return optsim.Check(f, n, cfg, optsim.GenCorpus(f, n, corpusSize, seed))
}

// VectorizeSum rewrites a sum chain into the lane-partitioned shape a
// fast-math vectorizer produces (legal only under reassociation).
func VectorizeSum(n ExprNode, lanes int) (ExprNode, bool) {
	return optsim.VectorizeSum(n, lanes)
}

// --- Exception monitor and kernels ---

// Monitor watches a computation's floating point exceptions.
type Monitor = monitor.Monitor

// MonitorReport is the audit of one monitored execution.
type MonitorReport = monitor.Report

// Condition is a suspicion-quiz exceptional condition.
type Condition = monitor.Condition

// NewMonitor creates an exception monitor with a default environment.
func NewMonitor() *Monitor { return monitor.New() }

// Tracer is a Monitor that also logs the first exceptional operations.
type Tracer = monitor.Tracer

// NewTracer creates a tracer watching the given flags (0 = all).
func NewTracer(watch Flags, limit int) *Tracer { return monitor.NewTracer(watch, limit) }

// Kernel is a runnable numerical workload.
type Kernel = kernels.Kernel

// Kernels returns the standard kernel suite.
func Kernels() []Kernel { return kernels.All() }

// MonitorKernel runs fn under a fresh monitor and returns result bits
// plus the exception report.
func MonitorKernel(f Format, fn func(*Env, Format) uint64) (uint64, MonitorReport) {
	return monitor.Run(f, fn)
}

// --- Error-free transformations (numeric-correctness toolbox) ---

// TwoSum returns s = round(a+b) and the exact rounding error, so that
// a + b == s + err exactly.
func TwoSum(e *Env, f Format, a, b uint64) (s, err uint64) {
	return eft.TwoSum(e, f, a, b)
}

// TwoProduct returns p = round(a*b) and the exact rounding error via
// FMA.
func TwoProduct(e *Env, f Format, a, b uint64) (p, err uint64) {
	return eft.TwoProduct(e, f, a, b)
}

// Sum2 computes a compensated sum with doubled effective precision.
func Sum2(e *Env, f Format, xs []uint64) uint64 { return eft.Sum2(e, f, xs) }

// Dot2 computes a compensated dot product with doubled effective
// precision.
func Dot2(e *Env, f Format, xs, ys []uint64) uint64 { return eft.Dot2(e, f, xs, ys) }

// --- Arbitrary precision shadow execution ---

// MPContext carries the working precision for arbitrary-precision
// arithmetic.
type MPContext = mpfloat.Context

// MPFloat is an arbitrary-precision binary floating point number.
type MPFloat = mpfloat.Float

// NewMPContext returns a context with the given precision in bits.
func NewMPContext(prec uint) MPContext { return mpfloat.NewContext(prec) }

// ShadowReport compares format vs arbitrary-precision evaluation.
type ShadowReport = mpfloat.ShadowReport

// --- Interval arithmetic (rigorous enclosures) ---

// IntervalArith performs interval arithmetic over a format using the
// directed rounding modes.
type IntervalArith = interval.Arith

// Interval is a closed interval of format values.
type Interval = interval.Interval

// NewIntervalArith creates interval arithmetic over format f.
func NewIntervalArith(f Format) *IntervalArith { return interval.New(f) }

// --- The floating point VM (programs for the monitor to spy on) ---

// VMProgram is an assembled floating point VM program.
type VMProgram = fpvm.Program

// VM executes VMPrograms on the softfloat under an environment.
type VM = fpvm.VM

// Assemble parses floating point VM assembly.
func Assemble(name, src string) (*VMProgram, error) { return fpvm.Assemble(name, src) }

// NewVM creates a VM over format f with a fresh environment.
func NewVM(f Format) *VM { return fpvm.New(f) }

// VMPrograms returns the built-in sample program library.
func VMPrograms() []*VMProgram { return fpvm.SamplePrograms() }

// --- Combined audit (the paper's "low barrier to use" tool) ---

// AuditReport is the combined verdict of every analyzer over one
// computation: lint, monitored evaluation, fast-math stability,
// interval enclosure, shadow execution, and a precision probe.
type AuditReport = audit.Report

// AuditRun audits the expression at the given binary64-encoded inputs.
func AuditRun(n ExprNode, vars map[string]uint64) AuditReport { return audit.Run(n, vars) }

// --- Static analysis (lint) ---

// LintFinding is one statically detected floating point hazard.
type LintFinding = lint.Finding

// LintExpr statically analyzes an expression for floating point
// hazards (division by differences, cancellation, sqrt of differences,
// long naive sums).
func LintExpr(n ExprNode) []LintFinding { return lint.CheckExpr(n) }

// LintProgram statically analyzes a VM program (float-equality control
// flow, division by differences, sqrt of differences).
func LintProgram(p *VMProgram) []LintFinding { return lint.CheckProgram(p) }

// --- Precision auto-tuning (Precimonious-style) ---

// TuneResult is the outcome of a precision-tuning search.
type TuneResult = tuner.Result

// PrecisionAssignment maps operation paths to formats.
type PrecisionAssignment = tuner.Assignment

// TunePrecision searches for the lowest per-operation precision keeping
// the expression within tol relative error of binary64 over a seeded
// corpus.
func TunePrecision(n ExprNode, corpusSize int, seed int64, tol float64) TuneResult {
	return tuner.Tune(n, tuner.Corpus(n, corpusSize, seed), tol)
}

// --- The survey instrument and quiz ---

// Instrument returns the paper's survey (background, core quiz,
// optimization quiz, suspicion quiz).
func Instrument() *survey.Instrument { return quiz.Instrument() }

// CoreQuestion is one core-quiz assertion with its oracle.
type CoreQuestion = quiz.CoreQuestion

// OptQuestion is one optimization-quiz question with its oracle.
type OptQuestion = quiz.OptQuestion

// CoreQuestions returns the 15 core questions in the paper's order.
func CoreQuestions() []CoreQuestion { return quiz.CoreQuestions() }

// OptQuestions returns the 4 optimization questions.
func OptQuestions() []OptQuestion { return quiz.OptQuestions() }

// Response is one participant's answers.
type Response = survey.Response

// Dataset is a collection of responses.
type Dataset = survey.Dataset

// Tally is a per-participant grade.
type Tally = quiz.Tally

// EncodeDataset renders a dataset as JSON.
func EncodeDataset(d *Dataset) ([]byte, error) { return survey.EncodeDataset(d) }

// DecodeDataset parses a dataset from JSON.
func DecodeDataset(data []byte) (*Dataset, error) { return survey.DecodeDataset(data) }

// ScoreCore grades the core quiz of a response.
func ScoreCore(r Response) Tally { return quiz.ScoreCore(r) }

// ScoreOpt grades the optimization quiz of a response.
func ScoreOpt(r Response) Tally { return quiz.ScoreOpt(r) }

// --- Population generation and the study pipeline ---

// Population is a generated synthetic cohort.
type Population = respondent.Population

// GenerateMain generates the main cohort (the paper's 199 developers).
func GenerateMain(seed int64, n int) *Population { return respondent.GenerateMain(seed, n) }

// GenerateStudents generates the student cohort (suspicion quiz only).
func GenerateStudents(seed int64, n int) *Dataset { return respondent.GenerateStudents(seed, n) }

// Study configures a reproduction run.
type Study = core.Study

// Results holds a completed run with figure renderers.
type Results = core.Results

// Claim is one checked headline finding.
type Claim = core.Claim

// DefaultStudy mirrors the paper's cohort sizes (n=199 main, n=52
// students) with the default seed.
func DefaultStudy() Study { return core.DefaultStudy() }
